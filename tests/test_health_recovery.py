"""Tests for the card health & recovery subsystem (repro.health).

Covers the full tentpole: progress watchdogs, the quiesce + hot-reset
pipeline, scheduler replay/reject policy, admission control, and the
per-region circuit breaker — including the ISSUE acceptance scenario
(one tenant hangs, the other's throughput is unaffected within 10%).
"""

import pytest

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.api import AppScheduler
from repro.apps import HllApp, PassThroughApp
from repro.driver.report import card_report
from repro.faults import (
    APP_HANG,
    APP_WEDGE_CREDIT,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.health import (
    AdmissionError,
    DecoupledError,
    HealthConfig,
    HealthMonitor,
    ProgressWatchdog,
    QuarantinedError,
    RecoveredError,
    Verdict,
)
from repro.sim import AllOf
from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services

#: Fast-reacting config so tests stay in the microsecond range.
FAST = HealthConfig(
    poll_interval_ns=5_000.0,
    deadline_ns=50_000.0,
    drain_ns=10_000.0,
)


def transfer_sg(src, dst, length):
    return SgEntry(
        local=LocalSg(src_addr=src, src_len=length, dst_addr=dst, dst_len=length)
    )


def hang_rule(vfpga_id=0, **kwargs):
    return FaultRule(
        site=APP_HANG, match=lambda v: v.vfpga_id == vfpga_id, **kwargs
    )


# ------------------------------------------------------------ watchdog unit


def test_watchdog_verdict_state_machine():
    progress = {"v": 0}
    busy = {"v": False}
    wd = ProgressWatchdog(
        "wd", lambda: progress["v"], lambda: busy["v"], deadline_ns=100.0
    )
    assert wd.sample(0.0) is Verdict.IDLE  # not busy: nothing to prove
    busy["v"] = True
    assert wd.sample(10.0) is Verdict.OK  # stall clock starts
    progress["v"] = 1
    assert wd.sample(50.0) is Verdict.OK  # progress moved: clock restarts
    assert wd.sample(140.0) is Verdict.OK  # 90 ns stalled < deadline
    assert wd.sample(160.0) is Verdict.HUNG  # 110 ns stalled >= deadline
    assert wd.trips == 1
    assert wd.sample(200.0) is Verdict.OK  # one trip per deadline, not per poll
    busy["v"] = False
    assert wd.sample(210.0) is Verdict.IDLE
    busy["v"] = True
    assert wd.sample(220.0) is Verdict.OK  # idle period cleared the history


def test_watchdog_rejects_bad_deadline():
    with pytest.raises(ValueError):
        ProgressWatchdog("wd", lambda: 0, lambda: True, deadline_ns=0)


# --------------------------------------- hang detection + recovery pipeline


def _two_tenant_run(inject: bool):
    """One tenant hangs (or not); the other runs a fixed workload.

    Returns (env, driver, outcome) after the simulation fully drains.
    """
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=2))
    driver = Driver(env, shell)
    HealthMonitor(driver, FAST)
    if inject:
        plan = FaultPlan(seed=11, rules=[hang_rule(0, at_events=(0,))])
        FaultInjector(plan).arm(shell=shell)
    for v in range(2):
        shell.load_app(v, PassThroughApp())
    outcome = {}

    def victim():
        ct = CThread(driver, 0, pid=1)
        src = yield from ct.get_mem(1 << 14)
        dst = yield from ct.get_mem(1 << 14)
        try:
            yield from ct.invoke(Oper.LOCAL_TRANSFER,
                                 transfer_sg(src.vaddr, dst.vaddr, 1 << 14))
            outcome["victim"] = "ok"
        except RecoveredError:
            outcome["victim"] = "recovered"

    def bystander():
        ct = CThread(driver, 1, pid=2)
        src = yield from ct.get_mem(1 << 14)
        dst = yield from ct.get_mem(1 << 14)
        start = env.now
        for _ in range(64):
            yield from ct.invoke(Oper.LOCAL_TRANSFER,
                                 transfer_sg(src.vaddr, dst.vaddr, 1 << 14))
        outcome["bystander_ns"] = env.now - start

    procs = [env.process(victim()), env.process(bystander())]
    env.run(AllOf(env, procs))
    env.run()  # drain: let an in-flight recovery finish and the monitor park
    return env, driver, outcome


def test_hung_tenant_is_recovered_and_isolated():
    """ISSUE acceptance: with ``app.hang`` injected into one of two
    tenants, the hung vFPGA is recovered, ``card_report()["health"]``
    reflects it, no request is left unresolved, and the *other* tenant's
    throughput stays within 10% of the fault-free run."""
    _, _, baseline = _two_tenant_run(inject=False)
    env, driver, outcome = _two_tenant_run(inject=True)

    assert outcome["victim"] == "recovered"  # typed error, not a hang
    assert driver.recovery is not None
    assert driver.recovery.total_recoveries() == 1
    report = card_report(driver)["health"]
    states = {region["id"]: region["state"] for region in report["regions"]}
    assert states[0] == "degraded"
    assert states[1] == "healthy"
    assert report["card"] == "degraded"
    # Nothing unresolved: every pending completion was failed or delivered.
    assert all(not ctx.pending for ctx in driver.processes.values())
    # The healthy tenant is isolated from the recovery storm next door.
    assert outcome["bystander_ns"] == pytest.approx(
        baseline["bystander_ns"], rel=0.10
    )
    # Telemetry picked the events up.
    telemetry = card_report(driver)["telemetry"]
    assert telemetry["health"]["recoveries"] == 1
    assert telemetry["health"]["hung_verdicts"] >= 1


def test_decoupled_region_rejects_new_work():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=1)
    shell.vfpgas[0].decoupled = True

    def main():
        src = yield from ct.get_mem(4096)
        dst = yield from ct.get_mem(4096)
        yield from ct.invoke(Oper.LOCAL_TRANSFER,
                             transfer_sg(src.vaddr, dst.vaddr, 4096))

    env.process(main())
    with pytest.raises(DecoupledError):
        env.run()


def test_wedged_credits_recover_and_retry_succeeds():
    """``app.wedge_credit`` leaks the whole host credit pool; recovery
    refills it and a retried transfer completes byte-exactly."""
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    HealthMonitor(driver, FAST)
    plan = FaultPlan(
        seed=5,
        rules=[FaultRule(site=APP_WEDGE_CREDIT, probability=1.0, max_fires=16)],
    )
    FaultInjector(plan).arm(shell=shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=1)
    payload = bytes(i % 251 for i in range(1 << 16))  # 32 packets > 16 credits
    outcome = {}

    def main():
        src = yield from ct.get_mem(len(payload))
        dst = yield from ct.get_mem(len(payload))
        ct.write_buffer(src.vaddr, payload)
        sg = transfer_sg(src.vaddr, dst.vaddr, len(payload))
        try:
            yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        except RecoveredError:
            outcome["first"] = "recovered"
        while shell.vfpgas[0].decoupled:
            yield env.timeout(10_000.0)
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)  # retry on reset region
        return ct.read_buffer(dst.vaddr, len(payload))

    received = env.run(env.process(main()))
    env.run()
    assert outcome["first"] == "recovered"
    assert shell.vfpgas[0].credits_wedged == 16
    assert received == payload
    assert driver.recovery.total_recoveries() == 1
    # The reset refilled every pool exactly to capacity.
    for crediter in shell.vfpgas[0].rd_credits.values():
        assert crediter.in_flight == 0


# ------------------------------------------------------------ circuit breaker


def test_circuit_breaker_quarantines_repeat_offender():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=2))
    driver = Driver(env, shell)
    config = HealthConfig(
        poll_interval_ns=5_000.0,
        deadline_ns=30_000.0,
        drain_ns=5_000.0,
        breaker_threshold=2,
    )
    HealthMonitor(driver, config)
    plan = FaultPlan(seed=3, rules=[hang_rule(0, probability=1.0)])
    FaultInjector(plan).arm(shell=shell)
    for v in range(2):
        shell.load_app(v, PassThroughApp())
    errors = []

    def client():
        ct = CThread(driver, 0, pid=1)
        src = yield from ct.get_mem(4096)
        dst = yield from ct.get_mem(4096)
        sg = transfer_sg(src.vaddr, dst.vaddr, 4096)
        for _ in range(10):
            try:
                yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
                errors.append("ok")
            except RecoveredError:
                errors.append("recovered")
            except DecoupledError:
                errors.append("decoupled")
            except QuarantinedError:
                errors.append("quarantined")
                break
            yield env.timeout(100_000.0)

    env.run(env.process(client()))
    env.run()
    assert errors[-1] == "quarantined"
    assert shell.vfpgas[0].quarantined
    report = card_report(driver)["health"]
    states = {region["id"]: region["state"] for region in report["regions"]}
    assert states[0] == "quarantined"
    assert states[1] == "healthy"
    assert report["card"] == "degraded"  # one dark region; card still serves
    # Threshold 2: attempt 1 recovered, attempt 2 quarantined instead.
    assert driver.recovery.total_recoveries() == 1
    assert driver.recovery.quarantines == 1


def test_manual_recover_then_quarantine_sheds_scheduler_work():
    env, shell, driver, scheduler = _make_scheduler(max_queue_depth=8)

    def main():
        # Default breaker threshold 3: two manual recoveries succeed, the
        # third quarantines instead.
        for _ in range(3):
            yield env.process(driver.recover(0, reason="operator"))
        assert scheduler.quarantined
        with pytest.raises(QuarantinedError):
            yield from scheduler.submit("hll", lambda app: iter(()))

    env.run(env.process(main()))
    assert driver.recovery.total_recoveries() == 2
    assert driver.recovery.quarantines == 1
    assert card_report(driver)["health"]["card"] == "quarantined"


# ------------------------------------------- scheduler: admission + replay


def _make_scheduler(**kwargs):
    env = Environment()
    shell = Shell(
        env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False))
    )
    driver = Driver(env, shell)
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        "u55c",
        shell.config.services,
        shell.shell_id,
        sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    scheduler = AppScheduler(driver, **kwargs)
    bitstream = flow.app_flow(checkpoint, ["hll"]).bitstream
    scheduler.register("hll", bitstream, HllApp)
    scheduler.register("hll-idem", bitstream, HllApp, idempotent=True)
    return env, shell, driver, scheduler


def test_admission_block_mode_backpressures_but_serves_all():
    env, shell, driver, scheduler = _make_scheduler(
        max_queue_depth=2, admission="block"
    )
    served = []

    def client(i):
        def body(app):
            yield env.timeout(1_000.0)
            return i

        served.append((yield from scheduler.submit("hll", body)))

    procs = [env.process(client(i)) for i in range(6)]
    env.run(AllOf(env, procs))
    assert sorted(served) == list(range(6))
    assert scheduler.queue_full_stalls > 0
    assert scheduler.queue_depth_high_water <= 2
    assert scheduler.rejected_submits == 0


def test_admission_reject_mode_sheds_excess():
    env, shell, driver, scheduler = _make_scheduler(
        max_queue_depth=1, admission="reject"
    )
    results = {"served": 0, "rejected": 0}

    def client(i):
        def body(app):
            yield env.timeout(1_000.0)

        try:
            yield from scheduler.submit("hll", body)
            results["served"] += 1
        except AdmissionError:
            results["rejected"] += 1

    procs = [env.process(client(i)) for i in range(6)]
    env.run(AllOf(env, procs))
    assert results["rejected"] >= 1
    assert results["served"] + results["rejected"] == 6
    assert scheduler.rejected_submits == results["rejected"]


def _run_replay_case(kernel):
    env, shell, driver, scheduler = _make_scheduler()
    runs = []
    outcome = {}

    def body(app):
        runs.append(env.now)
        yield env.timeout(1_000_000.0)  # 1 ms: plenty of time to interrupt
        return "done"

    def client():
        try:
            outcome["result"] = yield from scheduler.submit(kernel, body)
        except RecoveredError:
            outcome["result"] = "recovered-error"

    def orchestrate():
        while not runs:  # wait until the body is actually running
            yield env.timeout(10_000.0)
        yield env.timeout(100_000.0)
        yield env.process(driver.recover(0, reason="test"))

    main = env.process(client())
    env.process(orchestrate())
    env.run(main)
    env.run()
    return scheduler, driver, runs, outcome


def test_idempotent_request_is_replayed_after_recovery():
    scheduler, driver, runs, outcome = _run_replay_case("hll-idem")
    assert outcome["result"] == "done"
    assert len(runs) == 2  # aborted once, replayed to completion
    assert scheduler.replayed == 1
    assert scheduler.replay_rejected == 0
    assert driver.recovery.total_recoveries() == 1


def test_non_idempotent_request_is_rejected_after_recovery():
    scheduler, driver, runs, outcome = _run_replay_case("hll")
    assert outcome["result"] == "recovered-error"
    assert len(runs) == 1  # never replayed
    assert scheduler.replayed == 0
    assert scheduler.replay_rejected == 1
    assert driver.recovery.total_recoveries() == 1


def test_scheduler_kernel_is_reprogrammed_by_recovery():
    """Recovery restores the scheduler's resident kernel through the PR
    path, so follow-up requests run without an extra reconfiguration."""
    scheduler, driver, runs, outcome = _run_replay_case("hll-idem")
    assert scheduler.loaded == "hll-idem"
    assert scheduler.loaded_app is driver.shell.vfpgas[0].app
    assert driver.shell.vfpgas[0].app is not None
