"""Unit and property tests for the set-associative TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import PAGE_1G, PAGE_2M, PAGE_4K, MemLocation, Tlb, TlbConfig, TlbEntry


def make_entry(vpn, ppn=None, location=MemLocation.HOST):
    return TlbEntry(vpn=vpn, ppn=ppn if ppn is not None else vpn + 1000, location=location)


def test_config_validation():
    with pytest.raises(ValueError):
        TlbConfig(page_size=3000)
    with pytest.raises(ValueError):
        TlbConfig(num_entries=0)
    with pytest.raises(ValueError):
        TlbConfig(num_entries=10, associativity=4)  # not divisible
    with pytest.raises(ValueError):
        TlbConfig(associativity=0)


def test_page_shift_for_supported_sizes():
    assert TlbConfig(page_size=PAGE_4K).page_shift == 12
    assert TlbConfig(page_size=PAGE_2M).page_shift == 21
    assert TlbConfig(page_size=PAGE_1G).page_shift == 30


def test_lookup_hit_and_miss_counters():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=16, associativity=4))
    tlb.insert(make_entry(5))
    assert tlb.lookup(5 * PAGE_4K + 100).ppn == 1005
    assert tlb.lookup(6 * PAGE_4K) is None
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_offset_preserved_through_translation():
    tlb = Tlb(TlbConfig(page_size=PAGE_2M, num_entries=8, associativity=2))
    tlb.insert(TlbEntry(vpn=3, ppn=77, location=MemLocation.CARD))
    entry = tlb.lookup(3 * PAGE_2M + 0x1234)
    paddr = (entry.ppn << 21) | tlb.offset_of(3 * PAGE_2M + 0x1234)
    assert paddr == (77 << 21) | 0x1234


def test_lru_eviction_within_set():
    # 4 entries, 2 ways -> 2 sets; vpns 0,2,4 all map to set 0.
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=4, associativity=2))
    tlb.insert(make_entry(0))
    tlb.insert(make_entry(2))
    # Touch vpn 0 so vpn 2 becomes LRU.
    assert tlb.lookup(0) is not None
    tlb.insert(make_entry(4))
    assert tlb.lookup(0 * PAGE_4K) is not None
    assert tlb.lookup(2 * PAGE_4K) is None  # evicted
    assert tlb.lookup(4 * PAGE_4K) is not None
    assert tlb.evictions == 1


def test_insert_existing_vpn_updates_without_eviction():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=4, associativity=2))
    tlb.insert(make_entry(0, ppn=1))
    tlb.insert(make_entry(0, ppn=2))
    assert tlb.evictions == 0
    assert tlb.lookup(0).ppn == 2


def test_invalidate():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=4, associativity=2))
    tlb.insert(make_entry(9))
    assert tlb.invalidate(9 * PAGE_4K)
    assert not tlb.invalidate(9 * PAGE_4K)
    assert tlb.lookup(9 * PAGE_4K) is None


def test_invalidate_all():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=8, associativity=2))
    for vpn in range(8):
        tlb.insert(make_entry(vpn))
    tlb.invalidate_all()
    assert tlb.occupancy == 0


def test_occupancy_bounded_by_capacity():
    config = TlbConfig(page_size=PAGE_4K, num_entries=8, associativity=4)
    tlb = Tlb(config)
    for vpn in range(100):
        tlb.insert(make_entry(vpn))
    assert tlb.occupancy <= config.num_entries


def test_hit_rate():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=8, associativity=2))
    assert tlb.hit_rate == 0.0
    tlb.insert(make_entry(1))
    tlb.lookup(1 * PAGE_4K)
    tlb.lookup(2 * PAGE_4K)
    assert tlb.hit_rate == 0.5


@settings(max_examples=40, deadline=None)
@given(
    vpns=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200),
    assoc_pow=st.integers(min_value=0, max_value=3),
)
def test_most_recent_insertions_always_resident(vpns, assoc_pow):
    """Within each set, the `associativity` most recent distinct vpns remain."""
    assoc = 1 << assoc_pow
    config = TlbConfig(page_size=PAGE_4K, num_entries=16 * assoc, associativity=assoc)
    tlb = Tlb(config)
    for vpn in vpns:
        tlb.insert(make_entry(vpn))
    # For each set, compute the most recent distinct vpns in insertion order.
    by_set = {}
    for vpn in vpns:
        by_set.setdefault(vpn % config.num_sets, []).append(vpn)
    for set_no, history in by_set.items():
        recent = []
        for vpn in reversed(history):
            if vpn not in recent:
                recent.append(vpn)
            if len(recent) == assoc:
                break
        for vpn in recent:
            assert tlb.lookup(vpn * PAGE_4K) is not None, (set_no, vpn)


def test_pinned_entry_skipped_by_eviction():
    # One set of 2 ways; vpns 0,2,4 all map to set 0.
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=2, associativity=2))
    tlb.insert(make_entry(0))
    tlb.insert(make_entry(2))
    assert tlb.pin(0 * PAGE_4K)
    # vpn 0 is LRU but pinned: the victim must be vpn 2.
    tlb.insert(make_entry(4))
    assert tlb.lookup(0 * PAGE_4K) is not None
    assert tlb.lookup(2 * PAGE_4K) is None
    assert tlb.pinned_evictions == 0
    assert tlb.pinned_occupancy == 1


def test_fully_pinned_set_force_evicts_and_counts():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=2, associativity=2))
    tlb.insert(make_entry(0))
    tlb.insert(make_entry(2))
    assert tlb.pin(0 * PAGE_4K) and tlb.pin(2 * PAGE_4K)
    tlb.insert(make_entry(4))  # whole set pinned: LRU pinned entry goes
    assert tlb.pinned_evictions == 1
    assert tlb.lookup(0 * PAGE_4K) is None  # vpn 0 was LRU
    assert tlb.lookup(2 * PAGE_4K) is not None


def test_unpin_restores_evictability():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=2, associativity=2))
    tlb.insert(make_entry(0))
    tlb.insert(make_entry(2))
    assert tlb.pin(0 * PAGE_4K)
    assert tlb.unpin(0 * PAGE_4K)
    assert tlb.pinned_occupancy == 0
    tlb.insert(make_entry(4))
    assert tlb.lookup(0 * PAGE_4K) is None  # LRU again once unpinned
    assert tlb.pinned_evictions == 0


def test_reinsert_preserves_pin_and_pin_miss_returns_false():
    tlb = Tlb(TlbConfig(page_size=PAGE_4K, num_entries=2, associativity=2))
    assert not tlb.pin(0)  # nothing resident at this vaddr
    assert not tlb.unpin(0)
    tlb.insert(make_entry(0, ppn=7))
    assert tlb.pin(0)
    # A walk refreshing the translation must not silently unpin it.
    tlb.insert(make_entry(0, ppn=9))
    entry = tlb.lookup(0)
    assert entry.ppn == 9 and entry.pinned
    assert tlb.pinned_occupancy == 1
