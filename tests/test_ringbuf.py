"""Tests for the ring-buffer command path and MR registration (paper §6).

Covers the cmdReqQ/cmdRespQ mechanics (head/tail CSRs, doorbell batch
drain, one completion event per drained batch), the MTT shadow
(register / resolve / deregister with typed errors, TLB pinning with
rollback), the ``ring.doorbell_drop`` fault site, recovery via
``fail_pending``, the zero-length submit regression, and a sanitized
double-run determinism digest of the whole ring path.
"""

import hashlib

import pytest

from repro import CThread, Driver, Environment, Shell, ShellConfig
from repro.apps import PassThroughApp
from repro.core import Descriptor
from repro.driver import (
    CommandRing,
    DriverError,
    MrAccessError,
    MrBoundsError,
    MrError,
    MrKeyError,
    MrOverlapError,
    MrTable,
    RingError,
    RingFullError,
    RingOp,
    RingOpcode,
    ZeroLengthDescriptorError,
)
from repro.faults import RING_DOORBELL_DROP, FaultInjector, FaultPlan, FaultRule
from repro.mem import SegmentationFault
from repro.telemetry import collect_card_metrics


def make_thread(**shell_kw):
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, **shell_kw))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    thread = CThread(driver, 0, pid=1)
    return env, shell, driver, thread


# ------------------------------------------------------------- CommandRing


def test_command_ring_post_drain_head_tail():
    ring = CommandRing(slots=4)
    assert [ring.post(f"op{i}") for i in range(3)] == [0, 1, 2]
    assert ring.occupancy == 3 and ring.free == 1
    assert ring.drain() == ["op0", "op1", "op2"]
    # Head caught up to tail in one step; indices stay monotonic.
    assert ring.head == ring.tail == 3
    assert ring.occupancy == 0
    assert ring.post("op3") == 3
    assert ring.high_water == 3  # deepest occupancy ever reached


def test_command_ring_full_until_drained():
    ring = CommandRing(slots=2)
    ring.post("a")
    ring.post("b")
    with pytest.raises(RingFullError):
        ring.post("c")
    ring.drain()
    assert ring.post("c") == 2  # slots recycle at the doorbell drain


def test_command_ring_rejects_bad_geometry():
    with pytest.raises(RingError):
        CommandRing(slots=0)


# ----------------------------------------------------------------- MrTable


def test_mr_table_register_lookup_deregister():
    mrs = MrTable(pid=7)
    mr = mrs.register(0x1000, 0x2000, writable=False)
    assert mr.key == 1 and mr.pid == 7 and mr.end == 0x3000
    assert mrs.lookup(mr.key) is mr
    assert len(mrs) == 1
    assert mrs.deregister(mr.key) is mr
    with pytest.raises(MrKeyError):
        mrs.lookup(mr.key)
    with pytest.raises(MrKeyError):
        mrs.deregister(mr.key)


def test_mr_table_rejects_overlap_and_bad_args():
    mrs = MrTable(pid=1)
    mrs.register(0x1000, 0x1000)
    with pytest.raises(MrOverlapError):
        mrs.register(0x1800, 0x1000)  # straddles the existing region
    with pytest.raises(MrOverlapError):
        mrs.register(0x0, 0x1001)  # overlaps by one byte
    mrs.register(0x2000, 0x1000)  # adjacent is fine
    with pytest.raises(MrError):
        mrs.register(0x8000, 0)
    with pytest.raises(MrError):
        mrs.register(-1, 0x1000)


def test_mr_resolve_bounds_and_access():
    mrs = MrTable(pid=1)
    ro = mrs.register(0x1000, 0x1000, writable=False)
    assert mrs.resolve(ro.key, 0x100, 0x200, write=False) == 0x1100
    assert mrs.resolve(ro.key, 0, 0x1000, write=False) == 0x1000  # full slice
    with pytest.raises(MrBoundsError):
        mrs.resolve(ro.key, 0x1000, 1, write=False)  # one byte past the end
    with pytest.raises(MrBoundsError):
        mrs.resolve(ro.key, -1, 0x10, write=False)
    with pytest.raises(MrAccessError):
        mrs.resolve(ro.key, 0, 0x10, write=True)  # write via read-only MR
    with pytest.raises(MrKeyError):
        mrs.resolve(99, 0, 1, write=False)


# -------------------------------------------------- driver MR registration


def test_register_mr_pins_tlb_and_deregister_unpins():
    env, shell, driver, thread = make_thread()
    mmu = shell.dynamic.mmus[0]
    page = driver.processes[1].page_table.page_size

    def main():
        alloc = yield from thread.get_mem(2 * page)
        mr = yield from thread.register_mr(alloc.vaddr, 2 * page)
        return alloc, mr

    alloc, mr = env.run(env.process(main()))
    assert mr.num_pages == 2
    assert mmu.tlb.pinned_occupancy == 2
    assert mmu.tlb.lookup(alloc.vaddr).pinned
    assert driver.mrs_registered == 1
    thread.deregister_mr(mr)
    assert mmu.tlb.pinned_occupancy == 0
    assert not mmu.tlb.lookup(alloc.vaddr).pinned  # still resident, unpinned
    assert driver.mrs_deregistered == 1


def test_register_mr_unmapped_page_rolls_back():
    env, shell, driver, thread = make_thread()
    mmu = shell.dynamic.mmus[0]
    page = driver.processes[1].page_table.page_size
    outcome = {}

    def main():
        alloc = yield from thread.get_mem(page)
        try:
            # Second page of the range was never mapped: the walk faults
            # and registration must undo the pins it already took.
            yield from thread.register_mr(alloc.vaddr, 2 * page)
        except SegmentationFault as exc:
            outcome["error"] = exc

    env.run(env.process(main()))
    assert isinstance(outcome["error"], SegmentationFault)
    assert len(driver.processes[1].mrs) == 0
    assert mmu.tlb.pinned_occupancy == 0
    assert driver.mrs_registered == 0


def test_register_mr_charges_per_page_latency():
    env, shell, driver, thread = make_thread()
    page = driver.processes[1].page_table.page_size

    def main():
        alloc = yield from thread.get_mem(3 * page)
        before = env.now
        yield from thread.register_mr(alloc.vaddr, 3 * page)
        return env.now - before

    from repro.driver.driver import MR_REGISTER_LATENCY_PER_PAGE_NS

    elapsed = env.run(env.process(main()))
    assert elapsed == pytest.approx(3 * MR_REGISTER_LATENCY_PER_PAGE_NS)


# ------------------------------------------------------- ring submit path


def test_ring_ops_require_armed_rings():
    env, shell, driver, thread = make_thread()
    op = RingOp(opcode=RingOpcode.READ, mr_key=1, length=64)
    with pytest.raises(RingError, match="rings not armed"):
        driver.ring_post(1, op)
    with pytest.raises(RingError, match="rings not armed"):
        driver.ring_doorbell(1)


def run_ring_transfers(requests=4, slots=8, transfer_bytes=512, plan=None):
    """End-to-end TRANSFER batch through PassThroughApp; returns the
    observable state a determinism digest (or assertions) needs."""
    env, shell, driver, thread = make_thread()
    if plan is not None:
        FaultInjector(plan).arm(shell=shell)
    payload = bytes(range(256)) * (transfer_bytes // 256)
    out = {}

    def main():
        src = yield from thread.get_mem(transfer_bytes * requests)
        dst = yield from thread.get_mem(transfer_bytes * requests)
        for i in range(requests):
            thread.write_buffer(src.vaddr + i * transfer_bytes, payload)
        thread.setup_rings(slots=slots)
        src_mr = yield from thread.register_mr(
            src.vaddr, transfer_bytes * requests, writable=False
        )
        dst_mr = yield from thread.register_mr(dst.vaddr, transfer_bytes * requests)
        ops = [
            RingOp(
                opcode=RingOpcode.TRANSFER,
                mr_key=src_mr.key,
                offset=i * transfer_bytes,
                length=transfer_bytes,
                dst_mr_key=dst_mr.key,
                dst_offset=i * transfer_bytes,
            )
            for i in range(requests)
        ]
        entries = yield from thread.post_many(ops)
        out["entries"] = entries
        out["data_ok"] = all(
            thread.read_buffer(dst.vaddr + i * transfer_bytes, transfer_bytes)
            == payload
            for i in range(requests)
        )
        out["finished_ns"] = env.now

    env.run(env.process(main()))
    return env, shell, driver, thread, out


def test_post_many_end_to_end_single_doorbell():
    requests = 4
    env, shell, driver, thread, out = run_ring_transfers(requests=4, slots=8)
    entries = out["entries"]
    assert len(entries) == requests
    assert out["data_ok"]
    # Completions come back in post order, one batch event for all four.
    assert [e.wr_id for e in entries] == sorted(e.wr_id for e in entries)
    assert all(e.status == "success" and e.pid == 1 for e in entries)
    assert driver.ring_doorbells == 1
    assert driver.ring_batches == 1
    assert driver.ring_descriptors == requests
    assert driver.ring_full_stalls == 0
    rings = driver.processes[1].rings
    assert rings.batches_completed == rings.batches_opened == 1
    assert rings.outstanding == 0
    # TRANSFER read halves were absorbed by the batch, not leaked to the
    # legacy per-process completion stores.
    ctx = driver.processes[1]
    assert not ctx.completions_rd.items and not ctx.completions_wr.items
    assert not ctx.pending


def test_post_many_full_ring_stalls_and_re_rings():
    requests, slots = 5, 2
    env, shell, driver, thread, out = run_ring_transfers(requests=requests, slots=slots)
    assert len(out["entries"]) == requests and out["data_ok"]
    # 5 requests through a 2-slot ring: 2 forced early doorbells + final.
    assert driver.ring_full_stalls == 2
    assert driver.ring_doorbells == 3
    assert driver.ring_batches == 3
    assert driver.ring_descriptors == requests


def test_ring_post_zero_length_rejected():
    env, shell, driver, thread = make_thread()

    def main():
        alloc = yield from thread.get_mem(4096)
        thread.setup_rings(slots=4)
        mr = yield from thread.register_mr(alloc.vaddr, 4096)
        return mr

    mr = env.run(env.process(main()))
    with pytest.raises(ZeroLengthDescriptorError):
        driver.ring_post(1, RingOp(opcode=RingOpcode.READ, mr_key=mr.key, length=0))
    with pytest.raises(ZeroLengthDescriptorError):
        driver.ring_post(
            1,
            RingOp(
                opcode=RingOpcode.TRANSFER, mr_key=mr.key, length=64, dst_length=0
            ),
        )
    # Nothing reached the ring; a later doorbell has nothing to drain.
    assert driver.processes[1].rings.cmd.occupancy == 0


def test_post_descriptor_zero_length_rejected():
    """Regression: a zero-length descriptor produces no packets (so no
    completion, so a hang).  The submit path must reject it up front."""
    env, shell, driver, thread = make_thread()
    desc = Descriptor(vfpga_id=0, pid=1, vaddr=0x1000, length=64)
    desc.length = 0  # __post_init__ validates; emulate a corrupted ioctl
    with pytest.raises(ZeroLengthDescriptorError) as excinfo:
        driver.post_descriptor(desc, write=False)
    assert isinstance(excinfo.value, DriverError)  # typed, catchable as both
    assert driver.ring_descriptors == 0  # rejected before the ring


def test_setup_rings_refuses_rearm_with_work_in_flight():
    env, shell, driver, thread = make_thread()

    def main():
        alloc = yield from thread.get_mem(4096)
        thread.setup_rings(slots=4)
        mr = yield from thread.register_mr(alloc.vaddr, 4096)
        driver.ring_post(
            1, RingOp(opcode=RingOpcode.READ, mr_key=mr.key, length=64)
        )
        with pytest.raises(RingError, match="work in flight"):
            thread.setup_rings(slots=8)
        batch = driver.ring_doorbell(1)
        yield batch
        # Quiesced: re-arming (even resizing) is allowed again.
        assert thread.setup_rings(slots=8).cmd.slots == 8

    env.run(env.process(main()))


def test_doorbell_drop_fault_recovers_by_re_ringing():
    plan = FaultPlan(
        seed=3, rules=[FaultRule(site=RING_DOORBELL_DROP, at_events=(0,))]
    )
    env, shell, driver, thread, out = run_ring_transfers(
        requests=3, slots=8, plan=plan
    )
    assert len(out["entries"]) == 3 and out["data_ok"]
    # First MMIO write was eaten; the cThread backed off and re-rang.
    assert driver.ring_doorbells_lost == 1
    assert driver.ring_doorbells == 2
    assert driver.ring_batches == 1  # the dropped doorbell opened no batch
    injector = shell.static.xdma.faults
    assert injector.fire_counts[RING_DOORBELL_DROP] == 1


def test_fail_pending_fails_inflight_ring_batches():
    env, shell, driver, thread = make_thread()
    outcome = {}

    def main():
        alloc = yield from thread.get_mem(4096)
        thread.setup_rings(slots=4)
        mr = yield from thread.register_mr(alloc.vaddr, 4096, writable=False)
        for i in range(2):
            driver.ring_post(
                1,
                RingOp(
                    opcode=RingOpcode.READ, mr_key=mr.key, offset=i * 64, length=64
                ),
            )
        batch = driver.ring_doorbell(1)
        # The region dies before the completions come back.
        outcome["failed"] = driver.fail_pending(0, DriverError("hot reset"))
        try:
            yield batch
        except DriverError as exc:
            outcome["error"] = exc

    env.run(env.process(main()))
    assert outcome["failed"] == 2  # both gated work requests counted
    assert isinstance(outcome["error"], DriverError)
    assert driver.processes[1].rings.outstanding == 0


def test_ring_telemetry_metrics():
    env, shell, driver, thread, out = run_ring_transfers(requests=4, slots=8)
    snap = collect_card_metrics(driver).snapshot()
    ring = snap["ring"]
    assert ring["doorbells"] == 1
    assert ring["descriptors"] == 4
    assert ring["batches"] == 1
    assert ring["full_stalls"] == 0
    assert ring["mr_registered"] == 2
    assert ring["descriptors_per_doorbell"]["value"] == pytest.approx(4.0)
    assert snap["mem"]["tlb_pinned"]["value"] >= 1


def test_ring_path_is_deterministic_under_sanitizer(monkeypatch):
    """Same config, fresh envs: the full ring path (registration, batched
    doorbells, a full-ring stall, completions) digests identically."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")

    def digest():
        env, shell, driver, thread, out = run_ring_transfers(requests=5, slots=2)
        state = {
            "entries": [
                (e.wr_id, e.length, e.status, e.timestamp_ns)
                for e in out["entries"]
            ],
            "data_ok": out["data_ok"],
            "finished_ns": out["finished_ns"],
            "events": env.events_processed,
            "doorbells": driver.ring_doorbells,
            "descriptors": driver.ring_descriptors,
            "stalls": driver.ring_full_stalls,
        }
        return hashlib.sha256(repr(sorted(state.items())).encode()).hexdigest()

    first, second = digest(), digest()
    assert first == second
