"""Tests for the baselines: Coyote v1, AmorphOS path, feature matrix."""

import pytest

from repro import CThread, Driver, Environment, LocalSg, Oper, ServiceConfig, SgEntry
from repro.apps import PassThroughApp
from repro.baselines import (
    FEATURE_MATRIX,
    CopyThroughCardPath,
    CoyoteV1Shell,
    DirectHostStreamPath,
    Support,
    coyote_v2_row,
)
from repro.core import MoverConfig
from repro.mem import HbmConfig, HbmController
from repro.pcie import Xdma, XdmaConfig
from repro.synth import BuildFlow


# --------------------------------------------------------------- Coyote v1

def test_v1_has_single_streams():
    env = Environment()
    shell = CoyoteV1Shell(env)
    vfpga = shell.vfpgas[0]
    assert len(vfpga.host_in) == 1
    assert len(vfpga.card_in) == 1
    assert len(vfpga.net_in) == 1


def test_v1_runs_the_same_kernels():
    env = Environment()
    shell = CoyoteV1Shell(
        env, services=ServiceConfig(en_memory=False, mover=MoverConfig(carry_data=True))
    )
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=1)

    def main():
        src = yield from ct.get_mem(4096)
        dst = yield from ct.get_mem(4096)
        ct.write_buffer(src.vaddr, b"v1 datapath" + bytes(4085))
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                   dst_addr=dst.vaddr, dst_len=4096))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        return ct.read_buffer(dst.vaddr, 11)

    assert env.run(env.process(main())) == b"v1 datapath"


def test_v1_service_reconfig_needs_full_reflash():
    """v1 swapping services = Vivado full flow: tens of seconds offline."""
    env = Environment()
    shell = CoyoteV1Shell(env, services=ServiceConfig(en_memory=False))
    new_services = ServiceConfig(en_memory=True)

    def main():
        start = env.now
        yield env.process(shell.reconfigure_shell(None, new_services))
        return env.now - start

    elapsed_ns = env.run(env.process(main()))
    assert elapsed_ns > 30e9  # tens of seconds, vs v2's sub-second
    assert shell.config.services.en_memory


def test_v1_resource_footprint_below_v2():
    """Figure 11: v2's richer shell costs slightly more logic."""
    env = Environment()
    v1 = CoyoteV1Shell(env, services=ServiceConfig(en_memory=False))
    v1_luts = v1.shell_resources(["hll"]).luts
    flow = BuildFlow("u55c")
    v2_luts = flow.shell_flow(ServiceConfig(en_memory=False), ["hll"]).resources.luts
    assert v1_luts < v2_luts
    assert v2_luts / v1_luts < 1.35  # "slightly" higher


# ----------------------------------------------------------- AmorphOS path

def test_copy_through_card_slower_than_direct_stream():
    env = Environment()
    xdma = Xdma(env, XdmaConfig(host_memory_bytes=1 << 20))
    hbm = HbmController(env, HbmConfig(num_channels=4, channel_bytes=1 << 22))
    staged = CopyThroughCardPath(env, xdma, hbm)
    direct = DirectHostStreamPath(env, xdma)

    def measure(path):
        def proc():
            latency = yield from path.deliver(1 << 20)
            return latency

        return Environment.run(env, env.process(proc()))

    staged_ns = measure(staged)
    direct_ns = measure(direct)
    assert staged_ns > 1.5 * direct_ns  # the "non-negligible latency penalty"


# ------------------------------------------------------------ feature data

def test_matrix_has_fifteen_shells():
    assert len(FEATURE_MATRIX) == 15


def test_commercial_group_precedes_research():
    kinds = [s.commercial for s in FEATURE_MATRIX]
    # All commercial entries come before all research entries.
    assert kinds == sorted(kinds, reverse=True)


def test_v1_to_v2_delta():
    """The improvements the paper claims over Coyote v1."""
    v1 = next(s for s in FEATURE_MATRIX if s.name == "Coyote")
    v2 = coyote_v2_row()
    assert v1.multi_threading is Support.NO and v2.multi_threading is Support.YES
    assert v1.service_reconfig is Support.NO and v2.service_reconfig is Support.YES
    assert v1.interrupts is Support.NO and v2.interrupts is Support.YES
    assert "multiple" in v2.app_interface and "single" in v1.app_interface


def test_support_symbols():
    assert Support.YES.symbol == "Y"
    assert Support.PARTIAL.symbol == "~"
    assert Support.NO.symbol == "-"
    assert Support.NA.symbol == "n/a"
