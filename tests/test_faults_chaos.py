"""Hypothesis-driven chaos tests: seeded fault plans against the full shell.

The invariant: under any plan these strategies generate, a workload either
completes byte-exactly or fails with a clean, typed error — never a hang
(a stuck process surfaces as the engine's deadlock error and fails the
test) and never silent corruption.  Every test ``note()``s the plan, so a
failing example prints the exact ``(seed, plan)`` needed to replay it.
"""

import pytest
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    RdmaSg,
    SgEntry,
    Shell,
    ShellConfig,
    StreamType,
)
from repro.apps import AesCbcApp, PassThroughApp, aes_cbc_encrypt
from repro.cluster import FpgaCluster
from repro.core import ReconfigError, ServiceConfig
from repro.core.vfpga import UserApp
from repro.driver.report import card_report
from repro.faults import (
    HBM_ECC_DOUBLE,
    HBM_ECC_SINGLE,
    ICAP_CRC,
    MSIX_LOSS,
    PCIE_REPLAY,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.net import RdmaConfig
from repro.synth.flow import BuildFlow


def transfer_sg(src, dst, length, stream=StreamType.HOST):
    return SgEntry(
        local=LocalSg(
            src_addr=src, src_len=length, dst_addr=dst, dst_len=length,
            src_stream=stream, dst_stream=stream,
        )
    )


# ------------------------------------------------------- RDMA under chaos

@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    drop_pct=st.integers(min_value=0, max_value=8),
    corrupt_pct=st.integers(min_value=0, max_value=4),
    duplicate_pct=st.integers(min_value=0, max_value=5),
    reorder_pct=st.integers(min_value=0, max_value=5),
    nbytes=st.integers(min_value=1, max_value=30_000),
)
def test_rdma_transfer_survives_chaos(
    seed, drop_pct, corrupt_pct, duplicate_pct, reorder_pct, nbytes
):
    """Hardware-path RDMA WRITE through shells + switch, all net faults on."""
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    plan = FaultPlan.build(
        seed=seed,
        net_drop=drop_pct / 100.0,
        net_corrupt=corrupt_pct / 100.0,
        net_duplicate=duplicate_pct / 100.0,
        net_reorder=reorder_pct / 100.0,
    )
    note(f"plan: {plan.describe()}")
    injector = FaultInjector(plan).arm_cluster(cluster)
    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2, qpn_a=1, qpn_b=2)
    payload = bytes((seed + i) % 256 for i in range(nbytes))

    def main():
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        return thread_b.read_buffer(dst.vaddr, len(payload))

    received = env.run(env.process(main()))
    note(f"injected: {injector.summary()}")
    assert received == payload  # byte-exact despite loss/corruption/dup/reorder


# ---------------------------------------------- compute paths under chaos

@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    replay_pct=st.integers(min_value=0, max_value=30),
)
def test_aes_cbc_invoke_correct_under_pcie_replay(seed, replay_pct):
    """Link-layer replay slows DMA but must never corrupt the ciphertext."""
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    plan = FaultPlan.build(seed=seed, pcie_replay=replay_pct / 100.0)
    note(f"plan: {plan.describe()}")
    FaultInjector(plan).arm(shell=shell)
    shell.load_app(0, AesCbcApp(num_streams=1))
    ct = CThread(driver, 0, pid=10)
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plain = bytes((seed + i) % 256 for i in range(512))

    def main():
        src = yield from ct.get_mem(len(plain))
        dst = yield from ct.get_mem(len(plain))
        ct.write_buffer(src.vaddr, plain)
        yield from ct.set_csr(int.from_bytes(key[:8], "little"), 0)
        yield from ct.set_csr(int.from_bytes(key[8:], "little"), 1)
        yield from ct.invoke(Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, len(plain)))
        return ct.read_buffer(dst.vaddr, len(plain))

    assert env.run(env.process(main())) == aes_cbc_encrypt(plain, key, bytes(16))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    single_pct=st.integers(min_value=0, max_value=40),
    double_pct=st.integers(min_value=0, max_value=20),
)
def test_card_stream_transfer_survives_hbm_ecc(seed, single_pct, double_pct):
    """ECC events on the timed HBM datapath never corrupt data."""
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    plan = FaultPlan.build(
        seed=seed,
        hbm_ecc_single=single_pct / 100.0,
        hbm_ecc_double=double_pct / 100.0,
    )
    note(f"plan: {plan.describe()}")
    injector = FaultInjector(plan).arm(shell=shell)
    shell.load_app(0, PassThroughApp(num_streams=1, stream=StreamType.CARD))
    ct = CThread(driver, 0, pid=10)
    payload = bytes((seed + 3 * i) % 256 for i in range(16_384))

    def main():
        src = yield from ct.get_mem(len(payload))
        dst = yield from ct.get_mem(len(payload))
        ct.write_buffer(src.vaddr, payload)
        # First card access faults + migrates; the transfer then runs on
        # the timed HBM datapath where the ECC sites live.
        yield from ct.invoke(
            Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, len(payload), StreamType.CARD)
        )
        yield from ct.invoke(
            Oper.LOCAL_SYNC, SgEntry(local=LocalSg(src_addr=dst.vaddr, src_len=len(payload)))
        )
        return ct.read_buffer(dst.vaddr, len(payload))

    received = env.run(env.process(main()))
    assert received == payload
    hbm = shell.dynamic.hbm
    assert hbm.ecc_corrected == injector.fire_counts.get(HBM_ECC_SINGLE, 0)
    assert hbm.ecc_uncorrected == injector.fire_counts.get(HBM_ECC_DOUBLE, 0)


# ------------------------------------------- reconfiguration under chaos

class _NopApp(UserApp):
    name = "hll"  # a synthesizable model key

    def run(self, vfpga):
        yield vfpga.env.timeout(0)


def _app_bitstream(shell):
    flow = BuildFlow()
    checkpoint = flow.shell_flow(shell.config.services, ["hll"]).checkpoint
    return flow.app_flow(checkpoint, ["hll"]).bitstream


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    crc_events=st.sets(st.integers(min_value=0, max_value=5), max_size=3),
    msix_pct=st.integers(min_value=0, max_value=50),
)
def test_reconfiguration_survives_chaos(seed, crc_events, msix_pct):
    """CRC failures roll back and retry; lost interrupts poll — no hangs."""
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=ICAP_CRC, at_events=tuple(sorted(crc_events))),
            FaultRule(site=MSIX_LOSS, probability=msix_pct / 100.0),
        ],
    )
    note(f"plan: {plan.describe()}")
    FaultInjector(plan).arm(shell=shell)
    bitstream = _app_bitstream(shell)
    app_a, app_b = _NopApp(), _NopApp()
    outcome = {}

    def main():
        try:
            yield env.process(driver.reconfigure_app(bitstream, 0, app_a, cached=True))
            yield env.process(driver.reconfigure_app(bitstream, 0, app_b, cached=True))
        except ReconfigError as exc:
            outcome["error"] = exc
            return
        outcome["ok"] = True

    env.run(env.process(main()))
    note(f"report faults: {card_report(driver)['faults']}")
    if "ok" in outcome:
        # Completed: the second app is live, and any mid-flight CRC failure
        # was repaired by rollback + retry.
        assert shell.vfpgas[0].app is app_b
        assert driver.reconfig_retries >= shell.icap_rollbacks >= 0
    else:
        # Clean, typed failure after exhausting retries: the region holds
        # either the last-good app or nothing — never a half-programmed one.
        assert isinstance(outcome["error"], ReconfigError)
        assert shell.vfpgas[0].app in (None, app_a)


# -------------------------------------------------- the acceptance gauntlet

def test_acceptance_lossy_fabric_and_crc_failure():
    """ISSUE acceptance: >=5% frame loss + one ICAP CRC failure in one run:
    RDMA stays byte-exact, the failed reconfig rolls back then retries to
    success, and card_report shows non-zero per-domain fault counters."""
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    plan = FaultPlan(
        seed=2025,
        rules=[
            FaultRule(site="net.drop", probability=0.05),
            FaultRule(site=ICAP_CRC, at_events=(0,)),
            FaultRule(site=PCIE_REPLAY, probability=0.02),
        ],
    )
    injector = FaultInjector(plan).arm_cluster(cluster)
    node = cluster[0]
    bitstream = _app_bitstream(node.shell)
    app = _NopApp()
    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2, qpn_a=1, qpn_b=2)
    # ~64 data packets: at 5% loss some *data* frame (not just an ACK) is
    # dropped, so go-back-N retransmission demonstrably engages.
    payload = bytes(i % 251 for i in range(256_000))

    def main():
        # The first ICAP program hits the injected CRC failure, rolls back
        # (nothing to restore yet) and the driver retries to success.
        yield env.process(node.driver.reconfigure_app(bitstream, 0, app, cached=True))
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        return thread_b.read_buffer(dst.vaddr, len(payload))

    received = env.run(env.process(main()))
    assert received == payload
    report = card_report(node.driver)
    faults = report["faults"]
    assert faults["icap_crc_failures"] >= 1
    assert faults["reconfig_retries"] >= 1
    assert node.shell.vfpgas[0].app is app
    assert injector.fire_counts["net.drop"] > 0  # the fabric really was lossy
    assert cluster.switch.dropped > 0
    rdma_stats = node.shell.dynamic.rdma.stats
    assert rdma_stats["retransmissions"] >= 1
    assert faults["injected"]["net.drop"]["fires"] == cluster.switch.dropped
