"""Chaos tests for the health subsystem: hangs + network loss together.

The ISSUE scenario: arm ``app.hang`` and ``net.drop`` in the same plan
against a two-node cluster running local compute and RDMA concurrently.
The invariants: the card ends ``degraded`` (never deadlocked), every
submitted request resolves (success or typed error), the RDMA payload is
byte-exact despite the loss, and the whole thing is deterministic — two
runs with the same seed produce identical HealthReports.
"""

from repro import (
    Environment,
    Oper,
    RdmaSg,
    SgEntry,
)
from repro.apps import PassThroughApp
from repro.cluster import FpgaCluster
from repro.core import LocalSg, ServiceConfig
from repro.driver.report import card_report
from repro.faults import (
    APP_HANG,
    NET_DROP,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.health import (
    DecoupledError,
    HealthConfig,
    HealthMonitor,
    QuarantinedError,
    RecoveredError,
)
from repro.net import RdmaConfig
from repro.sim import AllOf

FAST = HealthConfig(
    poll_interval_ns=5_000.0,
    deadline_ns=50_000.0,
    drain_ns=10_000.0,
)


def _chaos_run(seed):
    """One full chaos scenario; returns the bits we assert on."""
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    node = cluster[0]
    HealthMonitor(node.driver, FAST)
    victim_region = node.shell.vfpgas[0]
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=APP_HANG, at_events=(2,),
                      match=lambda v: v is victim_region),
            FaultRule(site=NET_DROP, probability=0.05),
        ],
    )
    FaultInjector(plan).arm_cluster(cluster)
    node.shell.load_app(0, PassThroughApp())

    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2,
                                             qpn_a=1, qpn_b=2)
    payload = bytes((seed + i) % 256 for i in range(20_000))
    attempts = []

    def local_client():
        """Local transfers on the hang-prone region; retry through the
        typed recovery errors until one completes."""
        src = yield from thread_a.get_mem(1 << 13)
        dst = yield from thread_a.get_mem(1 << 13)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 13,
                                   dst_addr=dst.vaddr, dst_len=1 << 13))
        for _ in range(20):
            try:
                yield from thread_a.invoke(Oper.LOCAL_TRANSFER, sg)
                attempts.append("ok")
            except RecoveredError:
                attempts.append("recovered")
            except DecoupledError:
                attempts.append("decoupled")
            except QuarantinedError:
                attempts.append("quarantined")
                return
            if attempts[-1] == "ok" and attempts.count("ok") >= 3:
                return
            yield env.timeout(50_000.0)

    def rdma_client():
        """Concurrent RDMA WRITE across the lossy switch."""
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        return thread_b.read_buffer(dst.vaddr, len(payload))

    local = env.process(local_client())
    rdma = env.process(rdma_client())
    env.run(AllOf(env, [local, rdma]))
    env.run()  # drain every recovery / retransmit timer to quiescence

    return {
        "env": env,
        "driver": node.driver,
        "attempts": list(attempts),
        "received": rdma.value,
        "payload": payload,
        "health": card_report(node.driver)["health"],
    }


def test_hang_plus_drop_ends_degraded_not_deadlocked():
    run = _chaos_run(seed=42)

    # The hang was detected and recovered — and surfaced as typed errors,
    # never as a stuck simulation (env.run() returning proves no deadlock).
    assert "recovered" in run["attempts"] or "decoupled" in run["attempts"]
    assert run["attempts"].count("ok") >= 3
    assert run["driver"].recovery.total_recoveries() >= 1
    assert run["env"].now < 1e9  # quiesced within a bounded sim-second

    # Card verdict: degraded (one region recovered), not quarantined.
    assert run["health"]["card"] == "degraded"
    states = {r["id"]: r["state"] for r in run["health"]["regions"]}
    assert states[0] == "degraded"

    # Every submitted request resolved: nothing left pending anywhere.
    assert all(not ctx.pending for ctx in run["driver"].processes.values())
    # Every client attempt reached a terminal outcome.
    assert all(a in ("ok", "recovered", "decoupled", "quarantined")
               for a in run["attempts"])

    # The concurrent RDMA flow still delivered byte-exactly through the
    # 5% loss — recovery next door never touched it.
    assert run["received"] == run["payload"]


def test_chaos_is_deterministic_per_seed():
    """Two runs with the same seed must agree on everything the operator
    sees: the HealthReport, the recovery counters, the attempt log."""
    first = _chaos_run(seed=7)
    second = _chaos_run(seed=7)
    assert first["health"] == second["health"]
    assert first["attempts"] == second["attempts"]
    assert first["env"].now == second["env"].now
    for counter in ("quarantines", "completions_failed",
                    "descriptors_dropped", "tlb_entries_flushed"):
        assert (getattr(first["driver"].recovery, counter)
                == getattr(second["driver"].recovery, counter))
    assert (first["driver"].recovery.total_recoveries()
            == second["driver"].recovery.total_recoveries())


def test_different_seeds_may_diverge_but_all_invariants_hold():
    """Across seeds the schedule differs, but the safety invariants are
    seed-independent."""
    for seed in (1, 99, 12345):
        run = _chaos_run(seed=seed)
        assert run["received"] == run["payload"]
        assert all(not ctx.pending
                   for ctx in run["driver"].processes.values())
        assert run["health"]["card"] in ("degraded", "healthy")
        assert run["attempts"].count("ok") >= 3
