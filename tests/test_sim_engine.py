"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_time():
    env = Environment()

    def proc():
        yield env.timeout(10)
        assert env.now == 10
        yield env.timeout(5)
        return env.now

    p = env.process(proc())
    result = env.run(p)
    assert result == 15
    assert env.now == 15


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        value = yield env.timeout(1, value="hello")
        return value

    assert env.run(env.process(proc())) == "hello"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(30, "c"))
    env.process(proc(10, "a"))
    env.process(proc(20, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in range(8):
        env.process(proc(tag))
    env.run()
    assert order == list(range(8))


def test_process_waits_on_event():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(42)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(42, "open")]


def test_event_failure_propagates_into_process():
    env = Environment()
    gate = env.event()

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    def failer():
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(failer())
    assert env.run(p) == "caught boom"


def test_unhandled_process_exception_raises_from_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("kernel panic")

    env.process(bad())
    with pytest.raises(RuntimeError, match="kernel panic"):
        env.run()


def test_run_until_time_stops_exactly():
    env = Environment()
    hits = []

    def ticker():
        while True:
            yield env.timeout(10)
            hits.append(env.now)

    env.process(ticker())
    env.run(until=35)
    assert hits == [10, 20, 30]
    assert env.now == 35


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(3)
        return 99

    assert env.run(env.process(proc())) == 99


def test_run_until_event_deadlock_detected():
    env = Environment()
    never = env.event()

    def proc():
        yield never

    p = env.process(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(p)


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            caught.append((env.now, intr.cause))

    def attacker(target):
        yield env.timeout(7)
        target.interrupt("preempted")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert caught == [(7, "preempted")]


def test_interrupted_process_can_wait_again():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        return env.now

    def attacker(target):
        yield env.timeout(10)
        target.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(v) == 15


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(9, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(env.process(proc())) == (9, ["a", "b"])


def test_any_of_returns_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(5, value="fast")
        t2 = env.timeout(9, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, list(results.values()))

    assert env.run(env.process(proc())) == (5, ["fast"])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc():
        results = yield AllOf(env, [])
        return results

    assert env.run(env.process(proc())) == {}


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(10)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_run_into_past_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek == float("inf")
    env.timeout(12)
    assert env.peek == 12


# -------------------------------------------------- event/timeout lifecycle


def test_timeout_not_triggered_at_construction():
    """A timeout is *scheduled* at construction but must not report
    ``triggered`` (or ``processed``) until its delay actually elapsed —
    the historical engine preset ``_ok`` in ``Timeout.__init__``."""
    env = Environment()
    t = env.timeout(10)
    assert not t.triggered
    assert not t.processed
    with pytest.raises(SimulationError):
        t.value
    with pytest.raises(SimulationError):
        t.ok


def test_timeout_must_not_fire_early():
    env = Environment()
    t = env.timeout(10, value="late")
    env.run(until=9)
    assert not t.triggered
    assert not t.processed
    env.run(until=11)
    assert t.triggered
    assert t.processed
    assert t.ok
    assert t.value == "late"


def test_timeout_rejects_manual_trigger():
    """Timeouts fire by themselves; user code must not succeed/fail them."""
    env = Environment()
    t = env.timeout(5)
    with pytest.raises(SimulationError):
        t.succeed()
    with pytest.raises(SimulationError):
        t.fail(RuntimeError("no"))


def test_event_lifecycle_pending_triggered_processed():
    from repro.sim import Event

    env = Environment()
    event = Event(env)
    assert not event.triggered and not event.processed
    event.succeed(42)
    assert event.triggered and not event.processed
    assert event.value == 42
    env.run()
    assert event.triggered and event.processed


def test_zero_delay_timeout_triggers_only_after_dispatch():
    env = Environment()
    t = env.timeout(0)
    assert not t.triggered  # scheduled at now, but not yet dispatched
    env.step()
    assert t.triggered and t.processed


def test_condition_over_pending_timeouts():
    """AllOf over fresh timeouts must *wait*: with the construction-time
    ``_ok`` preset bug every branch looked already-triggered."""
    env = Environment()
    log = []

    def proc():
        results = yield AllOf(env, [env.timeout(5, value="a"), env.timeout(9, value="b")])
        log.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert log == [(9.0, ["a", "b"])]


def test_event_defuse_suppresses_unhandled_failure():
    """defuse() is the public "failure handled out-of-band" switch: a
    failed event with no waiter must not crash the run once defused."""
    from repro.sim import Event

    env = Environment()
    event = Event(env)
    assert event.defuse() is event  # chainable: event.defuse().fail(exc)
    event.fail(RuntimeError("handled elsewhere"))
    env.run()  # would raise RuntimeError without the defuse
    assert event.triggered and event.processed


def test_undefused_failure_still_propagates():
    from repro.sim import Event

    env = Environment()
    Event(env).fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        env.run()
