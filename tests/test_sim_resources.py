"""Unit tests for Resource, Store and Container primitives."""

import pytest

from repro.sim import Container, Environment, Resource, SimulationError, Store


# ---------------------------------------------------------------- Resource

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def user(tag, hold):
        req = res.request()
        yield req
        log.append(("acq", tag, env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append(("rel", tag, env.now))

    for tag, hold in [("a", 10), ("b", 10), ("c", 10)]:
        env.process(user(tag, hold))
    env.run()
    # a and b acquire at t=0; c must wait for a release at t=10.
    acquires = {tag: t for op, tag, t in log if op == "acq"}
    assert acquires["a"] == 0
    assert acquires["b"] == 0
    assert acquires["c"] == 10


def test_resource_fifo_fairness():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(1)
        res.release(req)

    for tag in range(5):
        env.process(user(tag))
    env.run()
    assert order == list(range(5))


def test_resource_release_unheld_raises():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_resource_bad_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


# ------------------------------------------------------------------- Store

def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i in range(4):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(4):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [0, 1, 2, 3]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer():
        item = yield store.get()
        times.append((env.now, item))

    def producer():
        yield env.timeout(25)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert times == [(25, "x")]


def test_store_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer():
        yield env.timeout(10)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0) in log
    # put-b completes only after the consumer drains "a" at t=10.
    assert ("put-b", 10) in log


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("x")
    env.run()
    assert store.try_get() == "x"
    assert store.try_get() is None


def test_store_len_and_free():
    env = Environment()
    store = Store(env, capacity=3)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2
    assert store.free == 1


# --------------------------------------------------------------- Container

def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def consumer():
        yield tank.get(30)
        log.append(env.now)

    def producer():
        yield env.timeout(5)
        yield tank.put(10)
        yield env.timeout(5)
        yield tank.put(25)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [10]
    assert tank.level == 5


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer():
        yield tank.put(5)
        log.append(env.now)

    def consumer():
        yield env.timeout(7)
        yield tank.get(6)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [7]
    assert tank.level == 9


def test_container_invalid_amounts():
    env = Environment()
    tank = Container(env, capacity=10)
    with pytest.raises(SimulationError):
        tank.get(0)
    with pytest.raises(SimulationError):
        tank.put(-1)
    with pytest.raises(SimulationError):
        tank.get(11)
