"""Tests for the card status report."""

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import PassThroughApp
from repro.driver import card_report, format_report


def run_some_traffic():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=11)

    def main():
        src = yield from ct.get_mem(1 << 16)
        dst = yield from ct.get_mem(1 << 16)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 16,
                                   dst_addr=dst.vaddr, dst_len=1 << 16))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    env.run(env.process(main()))
    env.run()  # drain trailing writebacks
    return driver


def test_report_structure():
    driver = run_some_traffic()
    report = card_report(driver)
    assert report["device"] == "u55c"
    assert "host" in report["services"]
    assert report["pcie"]["h2c_bytes"] == 1 << 16
    assert report["pcie"]["c2h_bytes"] == 1 << 16
    assert report["processes"] == [11]
    vfpga = report["vfpgas"][0]
    assert vfpga["app"] == "passthrough"
    assert vfpga["tlb"]["hits"] > 0
    assert "hbm" in report  # memory service enabled by default


def test_report_counts_writebacks():
    driver = run_some_traffic()
    report = card_report(driver)
    assert sum(report["pcie"]["writebacks"].values()) >= 2  # rd + wr


def test_format_report_flattens():
    driver = run_some_traffic()
    text = format_report(card_report(driver))
    assert "pcie.h2c_bytes: 65536" in text
    assert "vfpgas[0].app: passthrough" in text
