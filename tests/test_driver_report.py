"""Tests for the card status report."""

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import PassThroughApp
from repro.driver import card_report, format_report


def run_some_traffic():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=11)

    def main():
        src = yield from ct.get_mem(1 << 16)
        dst = yield from ct.get_mem(1 << 16)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 16,
                                   dst_addr=dst.vaddr, dst_len=1 << 16))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    env.run(env.process(main()))
    env.run()  # drain trailing writebacks
    return driver


def test_report_structure():
    driver = run_some_traffic()
    report = card_report(driver)
    assert report["device"] == "u55c"
    assert "host" in report["services"]
    assert report["pcie"]["h2c_bytes"] == 1 << 16
    assert report["pcie"]["c2h_bytes"] == 1 << 16
    assert report["processes"] == [11]
    vfpga = report["vfpgas"][0]
    assert vfpga["app"] == "passthrough"
    assert vfpga["tlb"]["hits"] > 0
    assert "hbm" in report  # memory service enabled by default


def test_report_counts_writebacks():
    driver = run_some_traffic()
    report = card_report(driver)
    assert sum(report["pcie"]["writebacks"].values()) >= 2  # rd + wr


def test_format_report_flattens():
    driver = run_some_traffic()
    text = format_report(card_report(driver))
    assert "pcie.h2c_bytes: 65536" in text
    assert "vfpgas[0].app: passthrough" in text


def test_report_fault_section_quiescent():
    """With no injector armed, the faults section is all-zero and carries
    no 'injected' summary."""
    driver = run_some_traffic()
    faults = card_report(driver)["faults"]
    assert faults["pcie_replays"] == 0
    assert faults["msix_lost"] == 0
    assert faults["icap_crc_failures"] == 0
    assert faults["icap_rollbacks"] == 0
    assert faults["reconfig_retries"] == 0
    assert faults["irq_timeouts"] == 0
    assert faults["invoke_timeouts"] == 0
    assert faults["hbm_ecc_corrected"] == 0
    assert faults["hbm_ecc_uncorrected"] == 0
    assert "injected" not in faults


def test_report_fault_section_under_injection():
    from repro.faults import FaultInjector, FaultPlan

    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    injector = FaultInjector(FaultPlan.build(seed=3, pcie_replay=1.0)).arm(shell=shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=11)

    def main():
        src = yield from ct.get_mem(4096)
        dst = yield from ct.get_mem(4096)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                   dst_addr=dst.vaddr, dst_len=4096))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    env.run(env.process(main()))
    env.run()
    report = card_report(driver)
    faults = report["faults"]
    assert faults["pcie_replays"] == injector.fire_counts["pcie.replay"] > 0
    # The injected summary mirrors the injector's per-site accounting.
    assert faults["injected"] == injector.summary()
    assert faults["injected"]["pcie.replay"]["fires"] == faults["pcie_replays"]
    # The per-section counters surface in the flattened text report too.
    assert "faults.pcie_replays" in format_report(report)


def test_report_telemetry_mirrors_fault_counters():
    """The telemetry section and the legacy sections read the same
    underlying counters: injected PCIe replays show up in both."""
    from repro.faults import FaultInjector, FaultPlan

    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    FaultInjector(FaultPlan.build(seed=3, pcie_replay=1.0)).arm(shell=shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=11)

    def main():
        src = yield from ct.get_mem(4096)
        dst = yield from ct.get_mem(4096)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                   dst_addr=dst.vaddr, dst_len=4096))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    env.run(env.process(main()))
    env.run()
    report = card_report(driver)
    telemetry = report["telemetry"]
    assert telemetry["pcie"]["replays"] == report["faults"]["pcie_replays"] > 0
    assert telemetry["pcie"]["h2c_bytes"] == report["pcie"]["h2c_bytes"]
    assert telemetry["mem"]["page_faults"] == report["memory"]["page_faults"]
    assert telemetry["sim"]["events_processed"] == env.events_processed
    # Flattened view exposes the dot paths operators would grep for.
    assert "telemetry.pcie.h2c_bytes" in format_report(report)
