"""Edge-triggered scheduler loop: wakeup coalescing, lost-wakeup safety,
starvation-freedom.

The loop arms a wakeup event only while parked idle with an empty queue;
submitters fire that edge at most once per idle period and the loop
batch-drains every eligible request per wakeup.  These tests pin the
three properties that make the design correct:

* coalescing  — a burst of N submits costs one wakeup, not N;
* no lost wakeup — an edge fired across ``quiesce()`` /
  ``resume_after_recovery()`` (or by the recovery replay path itself)
  always reaches the loop;
* starvation-freedom — the bounded affinity bypass still serves a
  pending kernel switch within ``affinity_window`` bypasses even when
  the whole resident-kernel stream arrived under a single wakeup.
"""

from repro import Driver, Environment, ServiceConfig, Shell, ShellConfig
from repro.api import AppScheduler
from repro.apps import AesEcbApp, HllApp
from repro.health.errors import RecoveredError
from repro.sim import AllOf
from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services
from repro.telemetry import MetricsRegistry


def make_scheduler(affinity_window=8, idempotent=False):
    env = Environment()
    shell = Shell(
        env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False))
    )
    driver = Driver(env, shell)
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        "u55c", shell.config.services, shell.shell_id,
        sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    scheduler = AppScheduler(driver, affinity_window=affinity_window)
    scheduler.register(
        "hll", flow.app_flow(checkpoint, ["hll"]).bitstream, HllApp,
        idempotent=idempotent,
    )
    scheduler.register(
        "aes", flow.app_flow(checkpoint, ["aes_ecb"]).bitstream, AesEcbApp
    )
    return env, shell, driver, scheduler


def make_body(env, tag, log, duration=1000.0):
    def body(app):
        log.append(tag)
        yield env.timeout(duration)
        return tag

    return body


# ------------------------------------------------------------- coalescing


def test_burst_submit_coalesces_into_one_wakeup():
    """N simultaneous submits: the first fires the armed edge, the rest
    see it already triggered — one wakeup, N dispatches."""
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def client(i):
        result = yield from scheduler.submit("hll", make_body(env, f"r{i}", log))
        return result

    procs = [env.process(client(i)) for i in range(10)]
    env.run(AllOf(env, procs))
    assert scheduler.wakeups == 1
    assert scheduler.dispatches == 10
    assert scheduler.requests_served == 10
    assert sorted(log) == [f"r{i}" for i in range(10)]


def test_submits_during_drain_need_no_wakeup():
    """Requests arriving while the loop is mid-drain append to the queue
    without any edge: the loop sees them on its next queue check."""
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def client(i, delay=0.0):
        if delay:
            yield env.timeout(delay)
        yield from scheduler.submit("hll", make_body(env, f"r{i}", log))

    procs = [env.process(client(i)) for i in range(5)]
    # These land mid-drain (bodies take 1000 ns each, reconfig far more).
    procs += [env.process(client(i, delay=500.0)) for i in range(5, 10)]
    env.run(AllOf(env, procs))
    assert scheduler.wakeups == 1
    assert scheduler.dispatches == 10
    assert scheduler.requests_served == 10


def test_each_idle_period_costs_one_wakeup():
    """Submits separated by full drains take one wakeup each — the
    coalescing factor (dispatches / wakeups) is exactly 1 here."""
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def client(i, delay):
        yield env.timeout(delay)
        yield from scheduler.submit("hll", make_body(env, f"r{i}", log))

    # Far enough apart (1 sim-second ≫ a reconfiguration) that the loop
    # fully drains and re-parks each time.
    procs = [env.process(client(i, delay=i * 1e9)) for i in range(4)]
    env.run(AllOf(env, procs))
    assert scheduler.wakeups == 4
    assert scheduler.dispatches == 4


# ---------------------------------------------------------- lost wakeups


def test_submit_while_paused_is_not_lost():
    """An edge fired while recovery holds the pause gate must survive:
    the loop wakes, blocks on the gate, and serves after resume."""
    env, shell, driver, scheduler = make_scheduler()
    log = []
    served = []

    def client():
        result = yield from scheduler.submit("hll", make_body(env, "r0", log))
        served.append(result)

    def orchestrator():
        yield env.timeout(10.0)  # loop is parked idle
        scheduler.quiesce(RecoveredError(0, "region reset"))
        env.process(client())
        yield env.timeout(50.0)  # submit lands while paused
        scheduler.resume_after_recovery(quarantined=False)

    env.run(env.process(orchestrator()))
    env.run()
    assert served == ["r0"]
    assert scheduler.requests_served == 1
    assert scheduler.wakeups >= 1


def test_replayed_request_wakes_parked_loop():
    """The recovery replay path re-queues the aborted request and fires
    ``_notify`` itself; a loop parked idle at resume time must wake and
    re-run it (idempotent kernel)."""
    env, shell, driver, scheduler = make_scheduler(idempotent=True)
    log = []
    served = []

    def client():
        result = yield from scheduler.submit(
            "hll", make_body(env, "r0", log, duration=500_000.0)
        )
        served.append(result)

    def orchestrator():
        # Poll until the body is actually running (reconfiguration takes
        # several sim-milliseconds first), then recover mid-body.
        while not log:
            yield env.timeout(10_000.0)
        scheduler.quiesce(RecoveredError(0, "region reset"))
        yield env.timeout(100.0)
        scheduler.resume_after_recovery(quarantined=False)

    env.process(client())
    env.run(env.process(orchestrator()))
    env.run()
    assert scheduler.replayed == 1
    assert served == ["r0"]
    assert log == ["r0", "r0"]  # body ran twice: aborted, then replayed


def test_abort_without_replay_keeps_loop_live():
    """Non-idempotent abort rejects the submitter — and the loop must
    still serve later submits (the park/arm handshake stayed sound)."""
    env, shell, driver, scheduler = make_scheduler(idempotent=False)
    log = []
    outcomes = []

    def client(tag, delay=0.0):
        if delay:
            yield env.timeout(delay)
        try:
            result = yield from scheduler.submit(
                "hll", make_body(env, tag, log, duration=500_000.0)
            )
            outcomes.append(("ok", result))
        except RecoveredError:
            outcomes.append(("recovered", tag))

    def orchestrator():
        while not log:
            yield env.timeout(10_000.0)
        scheduler.quiesce(RecoveredError(0, "region reset"))
        yield env.timeout(100.0)
        scheduler.resume_after_recovery(quarantined=False)

    env.process(client("r0"))
    env.process(orchestrator())
    env.process(client("r1", delay=1e9))
    env.run()
    assert ("recovered", "r0") in outcomes
    assert ("ok", "r1") in outcomes
    assert scheduler.replay_rejected == 1


# ----------------------------------------------------- starvation-freedom


def test_affinity_bypass_bounded_within_single_wakeup_batch():
    """A whole burst arrives under one wakeup; the pending kernel switch
    at the queue head is bypassed at most ``affinity_window`` times
    before being served unconditionally."""
    env, shell, driver, scheduler = make_scheduler(affinity_window=2)
    log = []

    def client(kernel, tag, delay=0.0):
        if delay:
            yield env.timeout(delay)
        yield from scheduler.submit(kernel, make_body(env, tag, log))

    procs = [env.process(client("hll", "h0"))]
    # All queued while h0 runs: one aes switch buried under hll traffic.
    for tag in ("a1", "h1", "h2", "h3", "h4"):
        kernel = "aes" if tag.startswith("a") else "hll"
        procs.append(env.process(client(kernel, tag, delay=1.0)))
    env.run(AllOf(env, procs))
    assert log.index("a1") <= 1 + scheduler.affinity_window
    assert log == ["h0", "h1", "h2", "a1", "h3", "h4"]
    # The entire stream cost two wakeups at most (h0's edge, and possibly
    # the delayed burst's own edge if the loop re-parked in between).
    assert scheduler.wakeups <= 2
    assert scheduler.dispatches == 6


# ------------------------------------------------------------- telemetry


def test_wakeup_and_dispatch_counters_exported():
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def client(i):
        yield from scheduler.submit("hll", make_body(env, f"r{i}", log))

    procs = [env.process(client(i)) for i in range(3)]
    env.run(AllOf(env, procs))
    registry = MetricsRegistry()
    scheduler.export_metrics(registry)
    assert registry.counter("scheduler.wakeups").value == scheduler.wakeups == 1
    assert registry.counter("scheduler.dispatches").value == 3
