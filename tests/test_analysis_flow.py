"""Tests for the whole-program flow rules (repro.analysis.flow et al).

Same fixture discipline as ``test_analysis.py``: every rule family gets
a fires / must-not-fire pair written into a ``tmp_path`` tree.  Event
rules key off sim scope (the fixture imports ``repro.sim``), STM001 off
the real ``QP_PROTOCOL`` declaration in ``src/repro/net/qp.py`` so the
tests pin the analyzer to the table the transition methods implement.
"""

import json
import textwrap
from pathlib import Path

from repro.analysis import run_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.rules_protocol import load_qp_protocol
from repro.analysis.sarif import render_sarif

REPO = Path(__file__).resolve().parents[1]
PLAN = REPO / "src" / "repro" / "faults" / "plan.py"
QP = REPO / "src" / "repro" / "net" / "qp.py"

SIM_IMPORT = "from repro.sim import Environment\n"


def analyze(tmp_path, source, filename="src/mod.py", sim=False, today=""):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    text = textwrap.dedent(source)
    if sim:
        text = SIM_IMPORT + text
    path.write_text(text)
    return run_paths(
        [tmp_path],
        design_doc=tmp_path / "NO_DESIGN.md",
        fault_registry=PLAN,
        qp_protocol=QP,
        today=today,
    )


def codes(result):
    return [f.code for f in result.findings]


# ------------------------------------------------------------------- EVT001


def test_evt001_fires_on_awaited_event_with_no_producer(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Engine:
            def __init__(self, env):
                self.env = env
                self.done = env.event()

            def waiter(self):
                value = yield self.done
                return value
        """,
        sim=True,
    )
    assert codes(result) == ["EVT001"]
    assert ".done" in result.findings[0].message


def test_evt001_silent_when_any_producer_exists(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Engine:
            def __init__(self, env):
                self.env = env
                self.done = env.event()

            def waiter(self):
                yield self.done

            def finish(self):
                self.done.succeed(1)
        """,
        sim=True,
    )
    assert result.ok


def test_evt001_producer_found_across_modules(tmp_path):
    """The whole-program join: the producer lives in a different file."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "waiter.py").write_text(
        SIM_IMPORT
        + textwrap.dedent(
            """
            class Engine:
                def __init__(self, env):
                    self.env = env
                    self.done = env.event()

                def waiter(self):
                    yield self.done
            """
        )
    )
    (src / "producer.py").write_text(
        SIM_IMPORT
        + textwrap.dedent(
            """
            class Completer:
                def finish(self, engine):
                    engine.done.succeed()
            """
        )
    )
    result = run_paths(
        [tmp_path],
        design_doc=tmp_path / "NO_DESIGN.md",
        fault_registry=PLAN,
        qp_protocol=QP,
    )
    assert result.ok


def test_evt001_escape_assumes_a_producer(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Engine:
            def __init__(self, env, fabric):
                self.env = env
                self.done = env.event()
                fabric.register(self.done)

            def waiter(self):
                yield self.done
        """,
        sim=True,
    )
    assert result.ok


def test_evt001_fires_on_orphaned_local_event(tmp_path):
    result = analyze(
        tmp_path,
        """
        def waiter(env):
            ev = env.event()
            yield ev
        """,
        sim=True,
    )
    assert codes(result) == ["EVT001"]
    assert "`ev`" in result.findings[0].message


def test_evt001_local_event_passed_out_is_fine(tmp_path):
    result = analyze(
        tmp_path,
        """
        def waiter(env, queue):
            ev = env.event()
            queue.append(ev)
            yield ev
        """,
        sim=True,
    )
    assert result.ok


# ------------------------------------------------------------------- EVT002


def test_evt002_fires_on_succeed_after_defuse(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Recovery:
            def abort(self):
                self.done.defuse()
                self.done.succeed(0)
        """,
        sim=True,
    )
    assert codes(result) == ["EVT002"]
    assert "defuse" in result.findings[0].message


def test_evt002_sanctioned_defuse_fail_chain_is_fine(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Recovery:
            def abort(self):
                self.done.defuse().fail(RuntimeError("aborted"))
        """,
        sim=True,
    )
    assert result.ok


def test_evt002_sees_one_hop_through_helper(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Recovery:
            def abort(self):
                self.done.defuse()
                self._complete()

            def _complete(self):
                self.done.succeed(0)
        """,
        sim=True,
    )
    assert codes(result) == ["EVT002"]
    assert "_complete" in result.findings[0].message


# ------------------------------------------------------------------- DLK001


def test_dlk001_fires_on_mutual_wait(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Pair:
            def __init__(self, env):
                self.env = env
                self.a_done = env.event()
                self.b_done = env.event()

            def proc_a(self):
                yield self.b_done
                self.a_done.succeed()

            def proc_b(self):
                yield self.a_done
                self.b_done.succeed()
        """,
        sim=True,
    )
    assert codes(result) == ["DLK001"]
    message = result.findings[0].message
    assert "proc_a" in message and "proc_b" in message


def test_dlk001_second_producer_breaks_the_cycle(tmp_path):
    result = analyze(
        tmp_path,
        """
        class Pair:
            def __init__(self, env):
                self.env = env
                self.a_done = env.event()
                self.b_done = env.event()

            def proc_a(self):
                yield self.b_done
                self.a_done.succeed()

            def proc_b(self):
                yield self.a_done
                self.b_done.succeed()

            def watchdog(self):
                yield self.env.timeout(100)
                self.b_done.succeed()
        """,
        sim=True,
    )
    assert result.ok


# ------------------------------------------------------------------- STM001


def test_stm001_fires_on_skipped_ladder_step(tmp_path):
    result = analyze(
        tmp_path,
        """
        from repro.net.qp import QueuePair

        def bring_up(endpoint):
            qp = QueuePair(local=endpoint)
            qp.to_rts()
            return qp
        """,
    )
    assert codes(result) == ["STM001"]
    assert "'init'" in result.findings[0].message


def test_stm001_fires_on_double_connect(tmp_path):
    result = analyze(
        tmp_path,
        """
        from repro.net.qp import QueuePair

        def bring_up(endpoint, remote):
            qp = QueuePair(local=endpoint)
            qp.connect(remote)
            qp.connect(remote)
            return qp
        """,
    )
    assert codes(result) == ["STM001"]


def test_stm001_accepts_the_declared_ladder(tmp_path):
    result = analyze(
        tmp_path,
        """
        from repro.net.qp import QueuePair, QpState

        def bring_up(endpoint, remote):
            qp = QueuePair(local=endpoint, state=QpState.RESET)
            qp.to_init()
            qp.to_rtr(remote)
            qp.to_rts()
            qp.to_error("fault")
            qp.reset()
            return qp
        """,
    )
    assert result.ok


def test_stm001_skips_pytest_raises_probes(tmp_path):
    result = analyze(
        tmp_path,
        """
        import pytest
        from repro.net.qp import QueuePair, QpTransitionError

        def test_illegal_transition(endpoint):
            qp = QueuePair(local=endpoint)
            with pytest.raises(QpTransitionError):
                qp.to_rts()
        """,
        filename="src/test_probe.py",
    )
    assert result.ok


def test_stm001_branches_merge_to_unknown(tmp_path):
    result = analyze(
        tmp_path,
        """
        from repro.net.qp import QueuePair

        def maybe_connect(endpoint, remote, eager):
            qp = QueuePair(local=endpoint)
            if eager:
                qp.connect(remote)
            qp.to_rtr(remote)
            return qp
        """,
    )
    # init on one arm, rts on the other -> unknown: no report either way.
    assert result.ok


def test_qp_protocol_loader_matches_declaration():
    protocol = load_qp_protocol(QP)
    assert protocol["to_rtr"] == (("init",), "rtr")
    assert protocol["reset"] == (("*",), "reset")


# ------------------------------------------------------------------- RES002


def test_res002_fires_through_helper_boundary(tmp_path):
    result = analyze(
        tmp_path,
        """
        def borrow(crediter):
            yield from crediter.acquire()

        def mover(crediter, packet):
            yield from borrow(crediter)
            packet.send()
        """,
        filename="benchmarks/mover.py",
    )
    # RES001 names the helper's bare acquire; RES002 points at the call
    # site actually holding the unreleased credit.
    assert sorted(codes(result)) == ["RES001", "RES002"]
    res002 = next(f for f in result.findings if f.code == "RES002")
    assert "borrow" in res002.message and "mover" in res002.message


def test_res002_silent_when_caller_releases(tmp_path):
    result = analyze(
        tmp_path,
        """
        def borrow(crediter):
            yield from crediter.acquire()  # repro: allow[RES001] pair below: mover's finally releases

        def mover(crediter, packet):
            yield from borrow(crediter)
            try:
                packet.send()
            finally:
                crediter.release()
        """,
        filename="benchmarks/mover.py",
    )
    assert result.ok


def test_res002_waived_split_phase_does_not_propagate(tmp_path):
    result = analyze(
        tmp_path,
        """
        def deposit(crediter):
            yield from crediter.acquire()  # repro: allow[RES001] split-phase: consumer releases on drain

        def feeder(crediter, flits):
            yield from deposit(crediter)
            flits.append(1)
        """,
        filename="benchmarks/feeder.py",
    )
    assert result.ok


# ------------------------------------------------------------------- WAI003


def test_wai003_fires_on_expired_waiver(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # repro: allow[DET001] until=2020-01-01 legacy probe
        """,
        today="2026-08-07",
    )
    # The expired waiver still suppresses DET001 (no avalanche) but is
    # itself reported.
    assert codes(result) == ["WAI003"]
    assert "expired" in result.findings[0].message


def test_wai003_future_dates_and_clock_free_runs_are_fine(tmp_path):
    source = """
        import time

        def stamp():
            return time.time()  # repro: allow[DET001] until=2999-12-31 host tooling
        """
    assert analyze(tmp_path, source, today="2026-08-07").ok
    # No today supplied (library / sim callers): expiry never evaluated.
    assert analyze(tmp_path, source).ok


def test_wai003_flags_unparseable_until_date(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # repro: allow[DET001] until=someday legacy probe
        """,
        today="2026-08-07",
    )
    assert codes(result) == ["WAI003"]
    assert "YYYY-MM-DD" in result.findings[0].message


def test_cli_passes_the_clock_for_wai003(tmp_path, capsys):
    bad = tmp_path / "src"
    bad.mkdir()
    (bad / "old.py").write_text(
        "import time\n"
        "t = time.time()  # repro: allow[DET001] until=2020-01-01 legacy\n"
    )
    assert analysis_main([str(tmp_path)]) == 1
    assert "WAI003" in capsys.readouterr().out


# ----------------------------------------------------------------- SARIF


def test_sarif_rendering_carries_findings(tmp_path):
    result = analyze(
        tmp_path,
        """
        def waiter(env):
            ev = env.event()
            yield ev
        """,
        sim=True,
    )
    document = json.loads(render_sarif(result))
    run = document["runs"][0]
    assert any(r["id"] == "EVT001" for r in run["tool"]["driver"]["rules"])
    [finding] = run["results"]
    assert finding["ruleId"] == "EVT001"
    location = finding["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("mod.py")
    assert location["region"]["startLine"] > 0


def test_cli_sarif_output_is_deterministic(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text("import time\nt = time.time()\n")
    out_a, out_b = tmp_path / "a.sarif", tmp_path / "b.sarif"
    assert analysis_main([str(tmp_path), "--format", "sarif", "--output", str(out_a)]) == 1
    assert analysis_main([str(tmp_path), "--format", "sarif", "--output", str(out_b)]) == 1
    capsys.readouterr()
    assert out_a.read_text() == out_b.read_text()
    assert json.loads(out_a.read_text())["runs"][0]["results"]
