"""Unit tests for virtual and frame allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    AllocType,
    FrameAllocator,
    OutOfMemoryError,
    VirtualAllocator,
)
from repro.mem.tlb import PAGE_2M, PAGE_4K


def test_alloc_types_map_to_page_sizes():
    assert AllocType.REG.page_size == 4 * 1024
    assert AllocType.THP.page_size == 2 * 1024 * 1024
    assert AllocType.HPF.page_size == 2 * 1024 * 1024
    assert AllocType.HPF1G.page_size == 1024 * 1024 * 1024


def test_virtual_allocations_page_aligned():
    va = VirtualAllocator()
    a = va.allocate(100, AllocType.REG)
    b = va.allocate(100, AllocType.HPF)
    assert a.vaddr % PAGE_4K == 0
    assert b.vaddr % PAGE_2M == 0


def test_virtual_allocations_do_not_overlap():
    va = VirtualAllocator()
    allocs = [va.allocate(5000, AllocType.REG) for _ in range(10)]
    spans = sorted((a.vaddr, a.vaddr + a.num_pages * a.page_size) for a in allocs)
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_num_pages_rounds_up():
    va = VirtualAllocator()
    a = va.allocate(PAGE_4K + 1, AllocType.REG)
    assert a.num_pages == 2


def test_find_allocation():
    va = VirtualAllocator()
    a = va.allocate(4096, AllocType.REG)
    assert va.find(a.vaddr) is a
    assert va.find(a.vaddr + 4095) is a
    with pytest.raises(KeyError):
        va.find(0)


def test_free_removes_allocation():
    va = VirtualAllocator()
    a = va.allocate(4096, AllocType.REG)
    va.free(a)
    with pytest.raises(KeyError):
        va.find(a.vaddr)
    with pytest.raises(KeyError):
        va.free(a)


def test_zero_length_rejected():
    with pytest.raises(ValueError):
        VirtualAllocator().allocate(0)


def test_frame_allocator_unique_frames():
    fa = FrameAllocator(total_bytes=16 * PAGE_4K, frame_size=PAGE_4K)
    frames = {fa.allocate() for _ in range(16)}
    assert len(frames) == 16
    assert all(f % PAGE_4K == 0 for f in frames)


def test_frame_allocator_exhaustion():
    fa = FrameAllocator(total_bytes=2 * PAGE_4K, frame_size=PAGE_4K)
    fa.allocate()
    fa.allocate()
    with pytest.raises(OutOfMemoryError):
        fa.allocate()


def test_frame_free_and_reuse():
    fa = FrameAllocator(total_bytes=PAGE_4K, frame_size=PAGE_4K)
    f = fa.allocate()
    fa.free(f)
    assert fa.allocate() == f


def test_frame_free_validation():
    fa = FrameAllocator(total_bytes=4 * PAGE_4K, frame_size=PAGE_4K)
    with pytest.raises(ValueError):
        fa.free(123)  # unaligned
    with pytest.raises(ValueError):
        fa.free(PAGE_4K)  # never allocated


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.booleans(), min_size=1, max_size=200))
def test_frame_accounting_invariant(ops):
    """free + used == total, regardless of the alloc/free sequence."""
    fa = FrameAllocator(total_bytes=32 * PAGE_4K, frame_size=PAGE_4K)
    held = []
    for do_alloc in ops:
        if do_alloc and fa.frames_free:
            held.append(fa.allocate())
        elif held:
            fa.free(held.pop())
        assert fa.frames_free + fa.frames_used == fa.num_frames
        assert fa.frames_used == len(held)
