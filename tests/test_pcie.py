"""Unit tests for the PCIe link and XDMA bridge."""

import pytest

from repro.pcie import MsiVector, PcieLink, PcieLinkConfig, Xdma, XdmaConfig
from repro.sim import Environment


def test_link_transfer_time_matches_bandwidth():
    env = Environment()
    link = PcieLink(env, PcieLinkConfig(h2c_bandwidth=12.0, descriptor_overhead_ns=0))

    def proc():
        yield from link.h2c(12_000)  # 12 KB at 12 B/ns = 1000 ns
        return env.now

    assert env.run(env.process(proc())) == pytest.approx(1000)


def test_link_directions_are_independent():
    env = Environment()
    link = PcieLink(env, PcieLinkConfig(descriptor_overhead_ns=0))
    done = {}

    def h2c():
        yield from link.h2c(120_000)
        done["h2c"] = env.now

    def c2h():
        yield from link.c2h(120_000)
        done["c2h"] = env.now

    env.process(h2c())
    env.process(c2h())
    env.run()
    # Full duplex: both finish at the single-transfer time.
    assert done["h2c"] == pytest.approx(done["c2h"])
    assert done["h2c"] == pytest.approx(10_000)


def test_link_same_direction_serialises():
    env = Environment()
    link = PcieLink(env, PcieLinkConfig(descriptor_overhead_ns=0))
    done = []

    def xfer():
        yield from link.h2c(120_000)
        done.append(env.now)

    env.process(xfer())
    env.process(xfer())
    env.run()
    assert done == [pytest.approx(10_000), pytest.approx(20_000)]


def test_descriptor_overhead_added():
    env = Environment()
    link = PcieLink(env, PcieLinkConfig(h2c_bandwidth=12.0, descriptor_overhead_ns=350))

    def proc():
        yield from link.h2c(1200)
        return env.now

    assert env.run(env.process(proc())) == pytest.approx(100 + 350)


def test_xdma_host_memory_roundtrip():
    env = Environment()
    xdma = Xdma(env, XdmaConfig(host_memory_bytes=1 << 20))

    def proc():
        xdma.host_mem.write(0x1000, b"payload")
        data = yield from xdma.read_host(0x1000, 7)
        yield from xdma.write_host(0x2000, data + b"!")
        return xdma.host_mem.read(0x2000, 8)

    assert env.run(env.process(proc())) == b"payload!"


def test_xdma_interrupt_delivery():
    env = Environment()
    xdma = Xdma(env, XdmaConfig(host_memory_bytes=1 << 20))
    seen = []
    xdma.on_interrupt(MsiVector.USER, lambda value: seen.append((env.now, value)))

    def proc():
        yield from xdma.raise_msix(MsiVector.USER, value=42)

    env.run(env.process(proc()))
    assert len(seen) == 1
    assert seen[0][1] == 42
    assert seen[0][0] > 0  # latency charged


def test_xdma_interrupt_vector_isolation():
    env = Environment()
    xdma = Xdma(env, XdmaConfig(host_memory_bytes=1 << 20))
    seen = []
    xdma.on_interrupt(MsiVector.PAGE_FAULT, lambda v: seen.append(("pf", v)))
    xdma.on_interrupt(MsiVector.USER, lambda v: seen.append(("user", v)))

    def proc():
        yield from xdma.raise_msix(MsiVector.PAGE_FAULT, value=1)

    env.run(env.process(proc()))
    assert seen == [("pf", 1)]


def test_xdma_writeback_counters():
    env = Environment()
    xdma = Xdma(env, XdmaConfig(host_memory_bytes=1 << 20))

    def proc():
        yield from xdma.writeback("vfpga0-host-rd")
        yield from xdma.writeback("vfpga0-host-rd")

    env.run(env.process(proc()))
    assert xdma.writebacks["vfpga0-host-rd"].count == 2


def test_xdma_byte_counters():
    env = Environment()
    xdma = Xdma(env, XdmaConfig(host_memory_bytes=1 << 20))

    def proc():
        yield from xdma.read_host(0, 100)
        yield from xdma.write_host(0, b"x" * 50)
        yield from xdma.migrate(1000, to_card=True)

    env.run(env.process(proc()))
    assert xdma.link.h2c_bytes == 1100
    assert xdma.link.c2h_bytes == 50
