"""Tests for the HyperLogLog sketch."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import HyperLogLog, murmur64


def test_murmur64_is_deterministic_and_spread():
    a = murmur64(1)
    b = murmur64(2)
    assert a == murmur64(1)
    assert a != b
    # Avalanche sanity: adjacent inputs differ in many bits.
    assert bin(a ^ b).count("1") > 16


def test_precision_validation():
    with pytest.raises(ValueError):
        HyperLogLog(precision=3)
    with pytest.raises(ValueError):
        HyperLogLog(precision=19)


def test_empty_sketch_estimates_zero():
    assert HyperLogLog(precision=10).estimate() == pytest.approx(0.0, abs=1.0)


def test_small_cardinality_exact_via_linear_counting():
    sketch = HyperLogLog(precision=12)
    for value in range(100):
        sketch.add(value)
    assert sketch.estimate() == pytest.approx(100, rel=0.05)


def test_estimate_within_standard_error():
    sketch = HyperLogLog(precision=14)
    true_count = 200_000
    for value in range(true_count):
        sketch.add(value)
    estimate = sketch.estimate()
    tolerance = 4 * sketch.standard_error * true_count
    assert abs(estimate - true_count) < tolerance


def test_duplicates_do_not_inflate():
    sketch = HyperLogLog(precision=12)
    for _ in range(50):
        for value in range(500):
            sketch.add(value)
    assert sketch.estimate() == pytest.approx(500, rel=0.1)


def test_merge_equals_union():
    a = HyperLogLog(precision=12)
    b = HyperLogLog(precision=12)
    union = HyperLogLog(precision=12)
    for value in range(0, 2000):
        a.add(value)
        union.add(value)
    for value in range(1000, 3000):
        b.add(value)
        union.add(value)
    a.merge(b)
    assert a.estimate() == pytest.approx(union.estimate(), rel=1e-9)


def test_merge_requires_same_precision():
    with pytest.raises(ValueError):
        HyperLogLog(precision=10).merge(HyperLogLog(precision=12))


def test_standard_error_formula():
    assert HyperLogLog(precision=14).standard_error == pytest.approx(
        1.04 / math.sqrt(1 << 14)
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_estimate_monotone_in_data_property(seed):
    """Adding more distinct values never decreases the raw register state."""
    rng = random.Random(seed)
    sketch = HyperLogLog(precision=10)
    previous = sketch.registers.copy()
    for _ in range(200):
        sketch.add(rng.getrandbits(60))
    assert (sketch.registers >= previous).all()
