"""Tests for the vector-op and NN kernels (functional units)."""

import numpy as np
import pytest

from repro.apps import VectorOpApp, vector_add, vector_mul
from repro.apps.nn import NnApp
from repro.core import StreamType
from repro.ml import convert_model, intrusion_detection_model


def test_vector_add_reference():
    a = np.array([1, 2, 3], dtype="<u4").tobytes()
    b = np.array([10, 20, 30], dtype="<u4").tobytes()
    out = np.frombuffer(vector_add(a, b), dtype="<u4")
    assert out.tolist() == [11, 22, 33]


def test_vector_add_wraps_modulo_32():
    a = np.array([0xFFFFFFFF], dtype="<u4").tobytes()
    b = np.array([2], dtype="<u4").tobytes()
    assert np.frombuffer(vector_add(a, b), dtype="<u4")[0] == 1


def test_vector_mul_reference():
    a = np.array([3, 5], dtype="<u4").tobytes()
    b = np.array([7, 11], dtype="<u4").tobytes()
    assert np.frombuffer(vector_mul(a, b), dtype="<u4").tolist() == [21, 55]


def test_vector_op_rejects_unaligned():
    with pytest.raises(ValueError):
        vector_add(b"\x00" * 3, b"\x00" * 3)


def test_vector_app_validation():
    with pytest.raises(ValueError):
        VectorOpApp(op="divide")
    app = VectorOpApp(op="mul", stream=StreamType.HOST)
    assert app.name == "vmul"
    assert "memory" not in app.required_services


def test_vector_app_card_requires_memory():
    app = VectorOpApp(op="add", stream=StreamType.CARD)
    assert "memory" in app.required_services


def test_nn_app_metadata():
    ip = convert_model(intrusion_detection_model()).build()
    app = NnApp(ip)
    assert app.name == "nn_inference"
    assert app.required_services == frozenset({"host"})
    assert app.samples_inferred == 0
