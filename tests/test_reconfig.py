"""Tests for partial reconfiguration: ICAP, flows, safety checks."""

import pytest

from repro import Driver, Environment, ServiceConfig, Shell, ShellConfig
from repro.apps import AesEcbApp, HllApp, PassThroughApp
from repro.core import (
    AXI_HWICAP,
    COYOTE_ICAP,
    MCAP,
    PCAP,
    Bitstream,
    BitstreamKind,
    IcapController,
    ReconfigError,
    VivadoHwManager,
)
from repro.mem import MmuConfig, TlbConfig
from repro.mem.tlb import PAGE_1G
from repro.synth import BuildFlow


def test_table2_port_throughput_ordering():
    """HWICAP < PCAP < MCAP << Coyote ICAP (Table 2)."""
    assert AXI_HWICAP.throughput_mbps == 19
    assert PCAP.throughput_mbps == 128
    assert MCAP.throughput_mbps == 145
    assert COYOTE_ICAP.throughput_mbps == 800
    # Coyote's controller is >5x the best baseline (order of magnitude vs HWICAP).
    assert COYOTE_ICAP.throughput_mbps / MCAP.throughput_mbps > 5
    assert COYOTE_ICAP.throughput_mbps / AXI_HWICAP.throughput_mbps > 40


def test_program_time_scales_with_size():
    bitstream_ns = COYOTE_ICAP.program_time_ns(800_000_000)
    assert bitstream_ns == pytest.approx(1e9)  # 800 MB at 800 MB/s = 1 s


def test_icap_controller_charges_time():
    env = Environment()
    icap = IcapController(env)
    bs = Bitstream(kind=BitstreamKind.APP, target_region="vfpga0", size_bytes=8_000_000)

    def proc():
        yield env.process(icap.program(bs, from_host=False))
        return env.now

    elapsed = env.run(env.process(proc()))
    assert elapsed == pytest.approx(10e6)  # 8 MB at 800 MB/s = 10 ms
    assert icap.programs == 1
    assert icap.bytes_programmed == 8_000_000


def test_vivado_flow_is_order_of_magnitude_slower():
    env = Environment()
    flow = BuildFlow("u55c")
    services = ServiceConfig()
    shell_bs = flow.shell_flow(services, ["passthrough"]).bitstream
    full_bs = flow.full_flow(services, ["passthrough"]).bitstream
    vivado_ns = VivadoHwManager(env).program_time_ns(full_bs)
    coyote_total_ns = (
        COYOTE_ICAP.program_time_ns(shell_bs.size_bytes)
        + IcapController.host_overhead_ns(shell_bs)
    )
    assert vivado_ns / coyote_total_ns > 10  # "an order of magnitude faster"


def test_vivado_flow_rejects_partial_bitstreams():
    env = Environment()
    bs = Bitstream(kind=BitstreamKind.SHELL, target_region="shell", size_bytes=1000)
    with pytest.raises(ReconfigError):
        VivadoHwManager(env).program_time_ns(bs)


def test_app_reconfig_swaps_user_logic():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    flow = BuildFlow("u55c")
    checkpoint = flow.shell_flow(shell.config.services, ["passthrough"]).checkpoint
    # Force the checkpoint identity to this live shell's configuration.
    app_bs = flow.app_flow(checkpoint, ["hll"]).bitstream
    assert app_bs.linked_shell == shell.shell_id
    shell.load_app(0, PassThroughApp())

    def main():
        start = env.now
        yield env.process(driver.reconfigure_app(app_bs, 0, HllApp()))
        return env.now - start

    elapsed = env.run(env.process(main()))
    assert isinstance(shell.vfpgas[0].app, HllApp)
    assert shell.app_reconfigs == 1
    assert elapsed > COYOTE_ICAP.program_time_ns(app_bs.size_bytes)


def test_app_linked_against_other_shell_rejected():
    """The fail-safe: apps cannot load into shells missing their services."""
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))  # memory service on
    driver = Driver(env, shell)
    flow = BuildFlow("u55c")
    other_services = ServiceConfig(
        en_memory=False, mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_1G))
    )
    checkpoint = flow.shell_flow(other_services, []).checkpoint
    app_bs = flow.app_flow(checkpoint, ["hll"]).bitstream

    def main():
        yield env.process(driver.reconfigure_app(app_bs, 0, HllApp()))

    env.process(main())
    with pytest.raises(ReconfigError, match="linked against a different shell"):
        env.run()


def test_app_requiring_missing_service_rejected_at_load():
    env = Environment()
    shell = Shell(
        env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False))
    )
    app = PassThroughApp(stream=__import__("repro").StreamType.CARD)  # needs memory
    with pytest.raises(ReconfigError, match="requires services"):
        shell.load_app(0, app)


def test_shell_reconfig_swaps_services_and_apps():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=2))
    driver = Driver(env, shell)
    shell.load_app(0, AesEcbApp())
    old_id = shell.shell_id
    flow = BuildFlow("u55c")
    new_services = ServiceConfig(
        en_memory=False, mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_1G))
    )
    result = flow.shell_flow(new_services, ["passthrough"])

    def main():
        start = env.now
        yield env.process(
            driver.reconfigure_shell(result.bitstream, new_services, [PassThroughApp(), None])
        )
        return env.now - start

    elapsed_ns = env.run(env.process(main()))
    assert shell.shell_id != old_id
    assert shell.config.service_names == new_services.service_names
    assert isinstance(shell.vfpgas[0].app, PassThroughApp)
    assert shell.vfpgas[1].app is None
    assert shell.dynamic.hbm is None  # memory service removed
    # Table 3 scale: total latency in the hundreds of ms, far below Vivado.
    assert 200e6 < elapsed_ns < 2e9


def test_shell_reconfig_wrong_kind_rejected():
    env = Environment()
    shell = Shell(env, ShellConfig())
    bs = Bitstream(kind=BitstreamKind.APP, target_region="vfpga0", size_bytes=100)

    def main():
        yield env.process(shell.reconfigure_shell(bs, ServiceConfig()))

    env.process(main())
    with pytest.raises(ReconfigError):
        env.run()


def test_shell_reconfig_wrong_device_rejected():
    env = Environment()
    shell = Shell(env, ShellConfig(device="u55c"))
    bs = Bitstream(
        kind=BitstreamKind.SHELL, target_region="shell", size_bytes=100, device="u250"
    )

    def main():
        yield env.process(shell.reconfigure_shell(bs, ServiceConfig()))

    env.process(main())
    with pytest.raises(ReconfigError, match="u250"):
        env.run()


def test_shell_remains_usable_after_reconfig():
    """End-to-end: reconfigure, then run a transfer on the new shell."""
    from repro import CThread, LocalSg, Oper, SgEntry

    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    flow = BuildFlow("u55c")
    new_services = ServiceConfig(en_memory=False)
    result = flow.shell_flow(new_services, ["passthrough"])

    def main():
        yield env.process(
            driver.reconfigure_shell(result.bitstream, new_services, [PassThroughApp()])
        )
        ct = CThread(driver, 0, pid=50)
        src = yield from ct.get_mem(4096)
        dst = yield from ct.get_mem(4096)
        ct.write_buffer(src.vaddr, b"post-reconfig" + bytes(4083))
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                   dst_addr=dst.vaddr, dst_len=4096))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        return ct.read_buffer(dst.vaddr, 13)

    assert env.run(env.process(main())) == b"post-reconfig"


# ----------------------------------------------------- bitstream cache


def _bs(region="vfpga0", size=8_000_000, seed=0):
    return Bitstream(
        kind=BitstreamKind.APP, target_region=region, size_bytes=size + seed
    )


def _program(env, icap, bitstream):
    proc = env.process(icap.program(bitstream, from_host=False))
    start = env.now
    env.run(proc)
    return env.now - start


def test_bitstream_cache_warm_replay_streams_a_fraction():
    env = Environment()
    icap = IcapController(env)
    bs = _bs()
    cold = _program(env, icap, bs)
    warm = _program(env, icap, bs)
    assert icap.cache_misses == 1 and icap.cache_hits == 1
    assert icap.is_cached(bs)
    # Warm replay crosses the ICAP with only the compressed delta.
    assert warm == pytest.approx(cold * IcapController.CACHE_REPLAY_FRACTION)
    expected_bytes = bs.size_bytes + int(
        bs.size_bytes * IcapController.CACHE_REPLAY_FRACTION
    )
    assert icap.bytes_programmed == expected_bytes


def test_bitstream_cache_is_keyed_per_region():
    env = Environment()
    icap = IcapController(env)
    bs_a = _bs(region="vfpga0")
    _program(env, icap, bs_a)
    # Same artifact bits, different target region: not a hit there.
    bs_b = Bitstream(
        kind=BitstreamKind.APP, target_region="vfpga1",
        size_bytes=bs_a.size_bytes,
    )
    assert icap.is_cached(bs_a) and not icap.is_cached(bs_b)
    _program(env, icap, bs_b)
    assert icap.cache_hits == 0 and icap.cache_misses == 2


def test_bitstream_cache_can_be_disabled():
    env = Environment()
    icap = IcapController(env, region_cache_enabled=False)
    bs = _bs()
    cold = _program(env, icap, bs)
    assert not icap.is_cached(bs)
    again = _program(env, icap, bs)
    assert again == pytest.approx(cold)  # no fast path
    assert icap.cache_hits == 0 and icap.cache_misses == 0


def test_bitstream_cache_evicts_fifo_per_region():
    env = Environment()
    icap = IcapController(env)
    streams = [
        _bs(seed=i) for i in range(IcapController.CACHE_ENTRIES_PER_REGION + 1)
    ]
    for bitstream in streams:
        _program(env, icap, bitstream)
    assert not icap.is_cached(streams[0])  # the oldest got evicted
    assert all(icap.is_cached(b) for b in streams[1:])


def test_icap_crc_fault_invalidates_the_cached_entry():
    from repro.core import IcapCrcError
    from repro.faults import ICAP_CRC, FaultInjector, FaultPlan, FaultRule

    env = Environment()
    icap = IcapController(env)
    icap.faults = FaultInjector(
        FaultPlan(seed=2, rules=[FaultRule(site=ICAP_CRC, at_events=(1,))])
    )
    bs = _bs()
    _program(env, icap, bs)
    assert icap.is_cached(bs)
    proc = env.process(icap.program(bs, from_host=False))
    proc.defuse()
    with pytest.raises(IcapCrcError):
        env.run(proc)
    # The region is undefined: the cached copy must not be trusted.
    assert icap.crc_failures == 1
    assert not icap.is_cached(bs)
    _program(env, icap, bs)  # re-programs cold, re-populates
    assert icap.is_cached(bs)
    assert icap.cache_misses == 2


def test_lost_msix_polls_and_late_delivery_is_harmless():
    """Satellite audit of the reconfig waiter lifecycle: a dropped
    RECONFIG_DONE interrupt falls back to the status poll and *removes*
    the stale waiter; an MSI-X message that then arrives late (or twice)
    must be a no-op — including against a waiter that is already
    triggered — not a crash or a double-fire."""
    from repro.faults import MSIX_LOSS, FaultInjector, FaultPlan, FaultRule
    from repro.pcie import MsiVector
    from repro.sim import Event

    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    plan = FaultPlan(
        seed=1,
        rules=[
            FaultRule(
                site=MSIX_LOSS,
                probability=1.0,
                max_fires=1,
                match=lambda vector: vector is MsiVector.RECONFIG_DONE,
            )
        ],
    )
    FaultInjector(plan).arm(shell=shell)
    flow = BuildFlow("u55c")
    checkpoint = flow.shell_flow(shell.config.services, ["passthrough"]).checkpoint
    bitstream = flow.app_flow(checkpoint, ["hll"]).bitstream
    shell.load_app(0, PassThroughApp())

    def first():
        yield env.process(driver.reconfigure_app(bitstream, 0, HllApp()))

    env.run(env.process(first()))
    assert isinstance(shell.vfpgas[0].app, HllApp)  # completed via the poll
    assert driver.irq_timeouts == 1
    assert driver._reconfig_done_waiters == []  # no stale waiter left behind

    # The lost interrupt shows up late, and then a duplicate: idempotent.
    driver._on_reconfig_done(1)
    driver._on_reconfig_done(1)
    # Even a stale *triggered* waiter in the list must not crash the
    # handler (the race the `if not event.triggered` guard closes).
    stale = Event(env)
    stale.succeed(0)
    driver._reconfig_done_waiters.append(stale)
    driver._on_reconfig_done(1)
    assert driver._reconfig_done_waiters == []
    env.run()

    # The plan's one fire is spent: the next PR completes via the
    # interrupt with no further timeouts.
    def second():
        yield env.process(driver.reconfigure_app(bitstream, 0, HllApp(), cached=True))

    env.run(env.process(second()))
    assert driver.irq_timeouts == 1
