"""Tests for the hls4ml-style compiler, quantization and overlays."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Driver, Environment, ServiceConfig, Shell, ShellConfig
from repro.baselines import PynqVitisOverlay
from repro.ml import (
    CoyoteOverlay,
    FixedPointType,
    HlsConfig,
    ModelSpec,
    config_from_model,
    convert_model,
    intrusion_detection_model,
)


# ----------------------------------------------------------- fixed point

def test_fixed_point_validation():
    with pytest.raises(ValueError):
        FixedPointType(1, 1)
    with pytest.raises(ValueError):
        FixedPointType(16, 20)


def test_quantize_roundtrip_of_representable_values():
    q = FixedPointType(16, 6)
    values = np.array([0.0, 1.0, -1.0, 0.5, -31.5])
    assert np.array_equal(q.roundtrip(values), values)


def test_quantize_saturates():
    q = FixedPointType(8, 4)  # range [-8, 7.9375]
    assert q.roundtrip(np.array([100.0]))[0] == pytest.approx(7.9375)
    assert q.roundtrip(np.array([-100.0]))[0] == pytest.approx(-8.0)


def test_quantize_rounds_to_nearest():
    q = FixedPointType(16, 8)
    resolution = q.resolution
    value = 3 * resolution + resolution * 0.4
    assert q.roundtrip(np.array([value]))[0] == pytest.approx(3 * resolution)


def test_str_format():
    assert str(FixedPointType(16, 6)) == "ap_fixed<16,6>"


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=-30.0, max_value=30.0, allow_nan=False))
def test_quantization_error_bounded(value):
    q = FixedPointType(16, 6)
    assert abs(q.roundtrip(np.array([value]))[0] - value) <= q.resolution / 2 + 1e-12


# ----------------------------------------------------------------- model

def test_model_spec_wiring():
    model = ModelSpec(input_width=10)
    model.add_dense(5).add_dense(3, "linear")
    assert model.layers[0].n_in == 10
    assert model.layers[1].n_in == 5
    assert model.output_width == 3


def test_dense_validation():
    from repro.ml import DenseSpec

    with pytest.raises(ValueError):
        DenseSpec(weights=np.zeros(3), bias=np.zeros(3))  # 1-D weights
    with pytest.raises(ValueError):
        DenseSpec(weights=np.zeros((3, 2)), bias=np.zeros(5))
    with pytest.raises(ValueError):
        DenseSpec(weights=np.zeros((3, 2)), bias=np.zeros(2), activation="gelu")


def test_float_forward_relu():
    model = ModelSpec(input_width=2)
    model.add_dense(1, "relu", weights=np.array([[1.0], [-1.0]]), bias=np.array([0.0]))
    out = model.predict_float(np.array([[3.0, 1.0], [1.0, 3.0]]))
    assert out.tolist() == [[2.0], [0.0]]


def test_unknown_backend_rejected():
    model = intrusion_detection_model()
    with pytest.raises(ValueError, match="backend"):
        convert_model(model, backend="CUDA")


def test_predict_requires_compile():
    hls = convert_model(intrusion_detection_model())
    with pytest.raises(RuntimeError):
        hls.predict(np.zeros((1, 49)))


def test_emulation_tracks_float_model():
    model = intrusion_detection_model()
    hls = convert_model(model, config_from_model(model))
    hls.compile()
    x = np.random.default_rng(0).normal(size=(256, 49))
    emu = hls.predict(x)
    ref = model.predict_float(x)
    corr = np.corrcoef(emu.ravel(), ref.ravel())[0, 1]
    assert corr > 0.999


def test_ip_estimates_scale_with_reuse_factor():
    model = intrusion_detection_model()
    fast = convert_model(model, HlsConfig(reuse_factor=1)).build()
    slow = convert_model(model, HlsConfig(reuse_factor=64)).build()
    assert fast.initiation_interval_cycles < slow.initiation_interval_cycles
    assert fast.resources.dsps > slow.resources.dsps


def test_sample_byte_widths():
    ip = convert_model(intrusion_detection_model()).build()
    assert ip.sample_in_bytes == 49 * 2
    assert ip.sample_out_bytes == 2 * 2


# -------------------------------------------------------------- overlays

def make_deployed_overlay():
    model = intrusion_detection_model()
    hls = convert_model(model, config_from_model(model))
    hls.compile()
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False)))
    driver = Driver(env, shell)
    return env, hls, CoyoteOverlay(driver, hls)


def test_overlay_requires_matching_backend():
    model = intrusion_detection_model()
    hls = convert_model(model, backend="VitisPynq")
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    with pytest.raises(ValueError, match="CoyoteAccelerator"):
        CoyoteOverlay(driver, hls)


def test_overlay_predict_requires_programming():
    env, hls, overlay = make_deployed_overlay()

    def main():
        yield from overlay.predict(np.zeros((4, 49)))

    env.process(main())
    with pytest.raises(RuntimeError, match="program_fpga"):
        env.run()


def test_overlay_fpga_matches_emulation_bit_exactly():
    env, hls, overlay = make_deployed_overlay()
    x = np.random.default_rng(5).normal(size=(300, 49))

    def main():
        yield env.process(overlay.program_fpga())
        preds = yield from overlay.predict(x, batch_size=128)
        return preds

    fpga = env.run(env.process(main()))
    assert np.array_equal(fpga, hls.predict(x))


def test_overlay_rejects_bad_input_shape():
    env, hls, overlay = make_deployed_overlay()

    def main():
        yield env.process(overlay.program_fpga())
        yield from overlay.predict(np.zeros((4, 7)))

    env.process(main())
    with pytest.raises(ValueError, match="expected"):
        env.run()


def test_pynq_baseline_is_slower_but_correct():
    model = intrusion_detection_model()
    hls = convert_model(model, config_from_model(model))
    hls.compile()
    x = np.random.default_rng(2).normal(size=(512, 49))
    env, _hls, overlay = make_deployed_overlay()

    def coyote():
        yield env.process(overlay.program_fpga())
        start = env.now
        preds = yield from overlay.predict(x, batch_size=512)
        return preds, env.now - start

    cpreds, ctime = env.run(env.process(coyote()))

    env_b = Environment()
    pynq = PynqVitisOverlay(env_b, hls.build())

    def baseline():
        start = env_b.now
        preds = yield from pynq.predict(x, batch_size=512)
        return preds, env_b.now - start

    ppreds, ptime = env_b.run(env_b.process(baseline()))
    assert np.array_equal(cpreds, ppreds)
    assert ptime / ctime > 5.0
