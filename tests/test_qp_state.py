"""QP state machine: transition ladder, error flush, reset/reconnect.

Covers the IB-style verbs lifecycle (RESET → INIT → RTR → RTS →
SQ_ERROR/ERROR → RESET) plus the RdmaStack integration: arm-time
rejection of errored QPs, WR flushing with credit conservation, the
requester-side retry-exhaustion path, and the recycle-reconnect path.
"""

import pytest

from repro.mem import SparseMemory
from repro.net import (
    Cmac,
    MacAddress,
    QpEndpoint,
    QpState,
    QpStateError,
    QpTransitionError,
    QueuePair,
    RdmaError,
    RdmaStack,
    Switch,
    WrFlushError,
)
from repro.sim import AllOf, Environment


def _endpoint(qpn=5, psn=100):
    return QpEndpoint(mac=MacAddress(0x02_0000_0001), ip=0x0A000101,
                      qpn=qpn, psn=psn)


def _remote(qpn=9, psn=200):
    return QpEndpoint(mac=MacAddress(0x02_0000_0002), ip=0x0A000102,
                      qpn=qpn, psn=psn)


def make_pair(n=2):
    """n stacks on one switch, with simple bound memories."""
    env = Environment()
    switch = Switch(env)
    stacks = []
    for i in range(n):
        mac = MacAddress(0x02_0000_3000 + i)
        cmac = Cmac(env, name=f"qps{i}")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, 0x0A000200 + i, name=f"qps{i}")
        memory = SparseMemory(1 << 20, name=f"qpsmem{i}")

        def read_local(vaddr, length, memory=memory):
            yield env.timeout(length / 12.0)
            return memory.read(vaddr, length)

        def write_local(vaddr, data, length, memory=memory):
            yield env.timeout(length / 12.0)
            if data is not None:
                memory.write(vaddr, data)

        stack.bind_memory(read_local, write_local)
        stacks.append(stack)
    return env, switch, stacks


def connect(stack_a, stack_b, qpn_a=1, qpn_b=2):
    qp_a = stack_a.create_qp(qpn_a, psn=10)
    qp_b = stack_b.create_qp(qpn_b, psn=20)
    qp_a.connect(qp_b.local)
    qp_b.connect(qp_a.local)
    return qp_a, qp_b


# ------------------------------------------------------- transition ladder


def test_fresh_qp_is_unconnected_init():
    qp = QueuePair(local=_endpoint())
    assert qp.state is QpState.INIT
    assert not qp.connected and not qp.in_error
    assert qp.sq_psn == qp.local.psn


def test_full_ladder_reset_init_rtr_rts():
    qp = QueuePair(local=_endpoint(), state=QpState.RESET)
    qp.to_init()
    assert qp.state is QpState.INIT
    qp.to_rtr(_remote())
    assert qp.state is QpState.RTR
    assert qp.epsn == 200  # expected PSN comes from the remote endpoint
    qp.to_rts()
    assert qp.state is QpState.RTS
    assert qp.connected


@pytest.mark.parametrize("walk", [
    lambda qp: qp.to_rtr(_remote()),       # RESET -> RTR skips INIT
    lambda qp: qp.to_rts(),                # RESET -> RTS skips everything
    lambda qp: (qp.to_init(), qp.to_init()),     # INIT -> INIT
    lambda qp: (qp.to_init(), qp.to_rts()),      # INIT -> RTS skips RTR
])
def test_out_of_order_transitions_raise(walk):
    qp = QueuePair(local=_endpoint(), state=QpState.RESET)
    with pytest.raises(QpTransitionError):
        walk(qp)


def test_connect_from_rts_raises_transition_error():
    qp = QueuePair(local=_endpoint())
    qp.connect(_remote())
    assert qp.state is QpState.RTS
    with pytest.raises(QpTransitionError, match="illegal transition"):
        qp.connect(_remote())


def test_sq_error_only_from_rts():
    qp = QueuePair(local=_endpoint())
    with pytest.raises(QpTransitionError):
        qp.to_sq_error("boom")
    qp.connect(_remote())
    qp.to_sq_error("boom")
    assert qp.state is QpState.SQ_ERROR
    assert qp.in_error and qp.error_reason == "boom"
    qp.to_sq_error("again")  # idempotent from error states
    assert qp.error_reason == "boom"


def test_to_error_from_any_state_and_idempotent():
    for prep in (lambda q: None, lambda q: q.to_init(),
                 lambda q: q.connect(_remote())):
        qp = QueuePair(local=_endpoint(), state=QpState.RESET)
        prep(qp)
        qp.to_error("dead")
        assert qp.state is QpState.ERROR
        assert qp.error_reason == "dead"
        qp.to_error("deader")  # keeps the first reason
        assert qp.error_reason == "dead"


def test_reset_recycles_for_reconnect():
    qp = QueuePair(local=_endpoint())
    qp.connect(_remote())
    qp.next_psn()
    qp.to_error("crash")
    qp.reset()
    assert qp.state is QpState.RESET
    assert qp.remote is None
    assert qp.sq_psn == qp.local.psn
    assert qp.error_reason == ""
    qp.connect(_remote())  # the recycle path must allow a fresh connect
    assert qp.connected


# -------------------------------------------------- stack arm-time checks


def test_send_on_errored_qp_raises_qp_state_error():
    env, _, (a, b) = make_pair()
    connect(a, b)
    a.qp_error(1, reason="test")
    with pytest.raises(QpStateError) as exc_info:
        a.send(1, b"x").send(None)  # arm the generator
    assert exc_info.value.qpn == 1
    assert "test" in str(exc_info.value)


def test_recv_on_errored_qp_raises_qp_state_error():
    env, _, (a, b) = make_pair()
    connect(a, b)
    b.qp_error(2, reason="test")
    with pytest.raises(QpStateError):
        b.recv(2).send(None)


def test_rdma_write_on_unconnected_qp_raises():
    env, _, (a, b) = make_pair()
    a.create_qp(1, psn=10)
    with pytest.raises(QpStateError, match="not connected"):
        a.rdma_write(1, 0, 0, 64).send(None)
    # QpStateError stays an RdmaError for legacy callers.
    assert issubclass(QpStateError, RdmaError)


# --------------------------------------------------------- flush machinery


def test_qp_error_flushes_parked_receiver():
    env, _, (a, b) = make_pair()
    connect(a, b)
    outcome = {}

    def receiver():
        try:
            yield from b.recv(2)
        except WrFlushError as exc:
            outcome["exc"] = exc

    proc = env.process(receiver())
    env.run(until=1_000.0)
    assert "exc" not in outcome  # parked, not failed
    flushed = b.qp_error(2, reason="teardown")
    env.run(proc)
    assert flushed >= 1
    assert outcome["exc"].qpn == 2
    assert b.stats["wr_flushes"] >= 1
    assert b.stats["qp_errors"] == 1


def test_qp_error_refunds_window_credits():
    env, switch, (a, b) = make_pair()
    connect(a, b)
    switch.kill_port(b.mac)  # black-hole so packets stay unacked

    def sender():
        yield from a.send(1, b"y" * 4096)

    proc = env.process(sender())
    proc.defuse()
    env.run(until=50_000.0)
    assert a._window.level < a.config.max_outstanding  # credits held
    a.qp_error(1, reason="flush")
    assert a._window.level == a.config.max_outstanding  # all refunded
    env.run(until=60_000.0)


def test_retry_exhaustion_errors_the_qp_and_flushes_sender():
    env, switch, (a, b) = make_pair()
    connect(a, b)
    switch.kill_port(b.mac)
    outcome = {}

    def sender():
        try:
            yield from a.send(1, b"z" * 512)
        except WrFlushError as exc:
            outcome["exc"] = exc

    env.run(env.process(sender()))
    assert "retry exhausted" in str(outcome["exc"])
    assert a.qps[1].state is QpState.ERROR
    budget = a.config.max_retries * a.config.retransmit_timeout_ns
    assert env.now <= 4 * budget  # dead peer detected promptly
    env.run()  # timer parks again; the sim must drain


def test_per_qp_progress_isolation():
    """A dead peer must exhaust retries even while another QP on the same
    stack makes steady progress (progress clock is per-QP, not global)."""
    env, switch, (a, b, c) = make_pair(3)
    connect(a, b, qpn_a=1, qpn_b=2)        # a <-> b healthy
    qp_ac = a.create_qp(3, psn=30)
    qp_ca = c.create_qp(4, psn=40)
    qp_ac.connect(qp_ca.local)
    qp_ca.connect(qp_ac.local)
    switch.kill_port(c.mac)                # a -> c dead
    outcome = {}

    def chatty():
        for _ in range(40):
            yield from a.send(1, b"hb")
            yield env.timeout(50_000.0)

    def doomed():
        try:
            yield from a.send(3, b"q" * 256)
        except WrFlushError as exc:
            outcome["exc"] = exc

    chatter = env.process(chatty())
    env.run(env.process(doomed()))
    assert "retry exhausted" in str(outcome["exc"])
    assert a.qps[1].state is QpState.RTS  # the healthy QP is untouched
    env.run(chatter)


def test_reset_qp_allows_traffic_again():
    env, switch, (a, b) = make_pair()
    connect(a, b)
    a.qp_error(1, reason="glitch")
    b.qp_error(2, reason="glitch")
    a.reset_qp(1)
    b.reset_qp(2)
    a.qps[1].connect(b.qps[2].local)
    b.qps[2].connect(a.qps[1].local)
    received = {}

    def sender():
        yield from a.send(1, b"hello again")

    def receiver():
        received["msg"] = yield from b.recv(2)

    env.run(AllOf(env, [env.process(sender()), env.process(receiver())]))
    assert received["msg"] == b"hello again"


def test_halt_flushes_every_qp_and_drains():
    env, switch, (a, b) = make_pair()
    connect(a, b)
    a.create_qp(7, psn=70)
    flushed_qps = a.halt(reason="power loss")
    assert a.halted
    for qpn, qp in a.qps.items():
        assert qp.state is QpState.ERROR, qpn
    assert a.stats["qp_errors"] == len(a.qps)
    env.run()  # nothing left alive


def test_destroy_qp_forgets_all_state():
    env, _, (a, b) = make_pair()
    connect(a, b)
    a.destroy_qp(1)
    assert 1 not in a.qps
    with pytest.raises(RdmaError, match="no such QP"):
        a.destroy_qp(1)
