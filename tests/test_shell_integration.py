"""Integration tests: shell + driver + cThreads + apps, end to end."""

import pytest

from repro import (
    AllocType,
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
    StreamType,
    VFpgaConfig,
)
from repro.apps import (
    AesCbcApp,
    AesEcbApp,
    HllApp,
    PassThroughApp,
    VectorOpApp,
    aes_cbc_encrypt,
    aes_ecb_encrypt,
)
from repro.core import MoverConfig
from repro.sim import AllOf


def make_system(**shell_kw):
    env = Environment()
    shell = Shell(env, ShellConfig(**shell_kw))
    driver = Driver(env, shell)
    return env, shell, driver


def transfer_sg(src, dst, length, src_dest=0, dst_dest=0, stream=StreamType.HOST):
    return SgEntry(
        local=LocalSg(
            src_addr=src, src_len=length, dst_addr=dst, dst_len=length,
            src_stream=stream, dst_stream=stream,
            src_dest=src_dest, dst_dest=dst_dest,
        )
    )


def test_passthrough_host_roundtrip():
    env, shell, driver = make_system(num_vfpgas=1)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=10)
    payload = bytes(range(256)) * 40

    def main():
        src = yield from ct.get_mem(len(payload))
        dst = yield from ct.get_mem(len(payload))
        ct.write_buffer(src.vaddr, payload)
        yield from ct.invoke(Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, len(payload)))
        return ct.read_buffer(dst.vaddr, len(payload))

    assert env.run(env.process(main())) == payload


def test_aes_ecb_produces_real_ciphertext():
    env, shell, driver = make_system(num_vfpgas=1)
    shell.load_app(0, AesEcbApp(num_streams=1))
    ct = CThread(driver, 0, pid=10)
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plain = b"attack at dawn!!" * 16  # 256 bytes, block-aligned

    def main():
        src = yield from ct.get_mem(len(plain))
        dst = yield from ct.get_mem(len(plain))
        ct.write_buffer(src.vaddr, plain)
        yield from ct.set_csr(int.from_bytes(key[:8], "little"), 0)
        yield from ct.set_csr(int.from_bytes(key[8:], "little"), 1)
        yield from ct.invoke(Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, len(plain)))
        return ct.read_buffer(dst.vaddr, len(plain))

    assert env.run(env.process(main())) == aes_ecb_encrypt(plain, key)


def test_aes_cbc_matches_reference_chain():
    env, shell, driver = make_system(num_vfpgas=1)
    shell.load_app(0, AesCbcApp(num_streams=1))
    ct = CThread(driver, 0, pid=10)
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plain = bytes(range(64)) * 4  # 256 bytes

    def main():
        src = yield from ct.get_mem(len(plain))
        dst = yield from ct.get_mem(len(plain))
        ct.write_buffer(src.vaddr, plain)
        yield from ct.set_csr(int.from_bytes(key[:8], "little"), 0)
        yield from ct.set_csr(int.from_bytes(key[8:], "little"), 1)
        yield from ct.invoke(Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, len(plain)))
        return ct.read_buffer(dst.vaddr, len(plain))

    # Default IV is all-zero.
    assert env.run(env.process(main())) == aes_cbc_encrypt(plain, key, bytes(16))


def test_vector_add_multiple_streams():
    """The motivating example: two operand streams, one result stream."""
    import numpy as np

    env, shell, driver = make_system(
        num_vfpgas=1, vfpga=VFpgaConfig(num_host_streams=4)
    )
    shell.load_app(0, VectorOpApp(op="add", stream=StreamType.HOST))
    ct = CThread(driver, 0, pid=10)
    a = np.arange(1024, dtype="<u4")
    b = np.arange(1024, dtype="<u4") * 3

    def main():
        buf_a = yield from ct.get_mem(4096)
        buf_b = yield from ct.get_mem(4096)
        buf_c = yield from ct.get_mem(4096)
        ct.write_buffer(buf_a.vaddr, a.tobytes())
        ct.write_buffer(buf_b.vaddr, b.tobytes())
        # Hardware needs both operands; issue reads to streams 0 and 1 and
        # collect the result from stream 2.
        sg_a = SgEntry(local=LocalSg(src_addr=buf_a.vaddr, src_len=4096, src_dest=0))
        sg_b = SgEntry(local=LocalSg(src_addr=buf_b.vaddr, src_len=4096, src_dest=1))
        sg_c = SgEntry(local=LocalSg(dst_addr=buf_c.vaddr, dst_len=4096, dst_dest=2))
        pa = ct.invoke_async(Oper.LOCAL_READ, sg_a)
        pb = ct.invoke_async(Oper.LOCAL_READ, sg_b)
        pc = ct.invoke_async(Oper.LOCAL_WRITE, sg_c)
        yield AllOf(env, [pa, pb, pc])
        return ct.read_buffer(buf_c.vaddr, 4096)

    result = np.frombuffer(env.run(env.process(main())), dtype="<u4")
    assert (result == a + b).all()


def test_hll_estimate_via_interrupt():
    import struct

    env, shell, driver = make_system(num_vfpgas=1)
    app = HllApp(precision=12)
    shell.load_app(0, app)
    ct = CThread(driver, 0, pid=10)
    values = list(range(5000)) * 2  # 5000 distinct, with duplicates
    payload = struct.pack(f"<{len(values)}I", *values)

    def main():
        src = yield from ct.get_mem(len(payload))
        ct.write_buffer(src.vaddr, payload)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=len(payload)))
        yield from ct.invoke(Oper.LOCAL_READ, sg)
        _ts, estimate = yield from ct.wait_interrupt()
        return estimate

    estimate = env.run(env.process(main()))
    assert estimate == pytest.approx(5000, rel=0.1)


def test_multi_tenant_fair_sharing():
    """Figure 8's property: equal shares, constant cumulative throughput."""
    results = {}
    for ntenants in (1, 4):
        env, shell, driver = make_system(
            num_vfpgas=ntenants,
            services=ServiceConfig(mover=MoverConfig(carry_data=False)),
        )
        rates = []

        def client(vid):
            ct = CThread(driver, vid, pid=100 + vid)
            shell.load_app(vid, AesEcbApp(num_streams=1))
            size = 1 << 20
            src = yield from ct.get_mem(size)
            dst = yield from ct.get_mem(size)
            start = env.now
            for _ in range(3):
                yield from ct.invoke(
                    Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, size)
                )
            rates.append(3 * size / (env.now - start))

        procs = [env.process(client(v)) for v in range(ntenants)]
        env.run(AllOf(env, procs))
        results[ntenants] = rates
    # Equal shares within 5%.
    four = results[4]
    assert max(four) / min(four) < 1.05
    # Cumulative conserved within 10% of single-tenant throughput.
    assert sum(four) == pytest.approx(sum(results[1]), rel=0.10)


def test_misbehaving_tenant_does_not_stall_others():
    """§7.2: a vFPGA that never consumes its data only stalls itself."""
    env, shell, driver = make_system(
        num_vfpgas=2, services=ServiceConfig(mover=MoverConfig(carry_data=False))
    )
    shell.load_app(0, PassThroughApp())  # the good tenant
    # vFPGA 1 gets NO app: deposited data is never consumed -> credits
    # exhaust -> its requests stall, and only its own.
    good = CThread(driver, 0, pid=1)
    bad = CThread(driver, 1, pid=2)
    finished = {}

    def good_client():
        size = 1 << 20
        src = yield from good.get_mem(size)
        dst = yield from good.get_mem(size)
        yield from good.invoke(Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, size))
        finished["good"] = env.now

    def bad_client():
        size = 1 << 20
        src = yield from bad.get_mem(size)
        # A read whose data will never be consumed by user logic.
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=size))
        bad.invoke_async(Oper.LOCAL_READ, sg)
        yield env.timeout(0)

    env.process(bad_client())
    proc = env.process(good_client())
    env.run(proc)
    assert "good" in finished
    # The stalled tenant holds exactly its credit allowance, no more.
    stalled = shell.vfpgas[1]
    assert stalled.rd_credits[StreamType.HOST].available == 0


def test_huge_page_allocation_reduces_pages():
    env, shell, driver = make_system(
        num_vfpgas=1,
        services=ServiceConfig(),
    )
    ct = CThread(driver, 0, pid=10)

    def main():
        alloc = yield from ct.get_mem(3 * 1024 * 1024, AllocType.HPF)
        return alloc

    alloc = env.run(env.process(main()))
    assert alloc.page_size == 2 * 1024 * 1024
    assert alloc.num_pages == 2


def test_user_interrupt_reaches_software():
    env, shell, driver = make_system(num_vfpgas=1)

    class Interrupter(PassThroughApp):
        def run(self, vfpga):
            vfpga.interrupt(value=0x1234)
            yield vfpga.env.event()

    shell.load_app(0, Interrupter())
    ct = CThread(driver, 0, pid=10)

    def main():
        ts, value = yield from ct.wait_interrupt()
        return (ts, value)

    ts, value = env.run(env.process(main()))
    assert value == 0x1234
    assert ts > 0  # MSI-X latency was charged


def test_completion_polling_mode():
    """Writeback disabled: completions found by MMIO polling, slower."""
    times = {}
    for writeback in (True, False):
        env, shell, driver = make_system(
            num_vfpgas=1,
            services=ServiceConfig(mover=MoverConfig(writeback=writeback)),
        )
        shell.load_app(0, PassThroughApp())
        ct = CThread(driver, 0, pid=10)

        def main():
            src = yield from ct.get_mem(4096)
            dst = yield from ct.get_mem(4096)
            start = env.now
            yield from ct.invoke(Oper.LOCAL_TRANSFER, transfer_sg(src.vaddr, dst.vaddr, 4096))
            return env.now - start

        times[writeback] = env.run(env.process(main()))
    assert times[False] > times[True]  # polling costs latency
