"""Edge-case tests for the CMAC and switch fabric."""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.net import BthHeader, Cmac, MacAddress, RocePacket, RoceOpcode, Switch
from repro.net.cmac import CMAC_BANDWIDTH, FRAME_OVERHEAD_BYTES
from repro.sim import Environment

MAC_A = MacAddress(0x02_11_01)
MAC_B = MacAddress(0x02_11_02)


def packet(dst=MAC_B, payload=b"x" * 100):
    return RocePacket.build(
        src_mac=MAC_A, dst_mac=dst, src_ip=1, dst_ip=2,
        bth=BthHeader(opcode=RoceOpcode.SEND_ONLY, dest_qp=1, psn=0),
        payload=payload,
    )


def test_tx_without_wire_rejected():
    env = Environment()
    cmac = Cmac(env)

    def proc():
        yield from cmac.tx(packet())

    env.process(proc())
    with pytest.raises(RuntimeError, match="not attached"):
        env.run()


def test_tx_serialisation_time_matches_line_rate():
    env = Environment()
    switch = Switch(env, latency_ns=0)
    cmac_a, cmac_b = Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    pkt = packet()

    def proc():
        yield from cmac_a.tx(pkt)
        return env.now

    elapsed = env.run(env.process(proc()))
    expected = (pkt.wire_length + FRAME_OVERHEAD_BYTES) / CMAC_BANDWIDTH
    assert elapsed == pytest.approx(expected)


def test_unroutable_frames_counted():
    env = Environment()
    switch = Switch(env)
    cmac_a = Cmac(env)
    switch.attach(MAC_A, cmac_a)

    def proc():
        yield from cmac_a.tx(packet(dst=MacAddress(0xDEAD)))

    env.run(env.process(proc()))
    env.run()
    assert switch.unroutable == 1
    assert switch.forwarded == 0


def test_switch_drop_counts():
    env = Environment()
    switch = Switch(env)
    cmac_a, cmac_b = Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    FaultInjector(FaultPlan.build(net_drop=1.0)).arm(switch=switch)

    def proc():
        yield from cmac_a.tx(packet())

    env.run(env.process(proc()))
    env.run()
    assert switch.dropped == 1
    assert cmac_b.rx_frames == 0


def test_legacy_drop_fn_hook_removed():
    """The deprecated ``Switch.drop_fn`` escape hatch is gone: selective
    drops go through a ``FaultPlan`` (here: a match predicate standing in
    for what drop_fn callers used to write)."""
    env = Environment()
    switch = Switch(env)
    assert not hasattr(switch, "drop_fn")
    cmac_a, cmac_b = Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    plan = FaultPlan(rules=(
        FaultRule(site="net.drop", probability=1.0,
                  match=lambda pkt: pkt.eth.dst == MAC_B),
    ))
    FaultInjector(plan).arm(switch=switch)

    def proc():
        yield from cmac_a.tx(packet())

    env.run(env.process(proc()))
    env.run()
    assert switch.dropped == 1
    assert cmac_b.rx_frames == 0


def test_duplicate_attach_rejected():
    env = Environment()
    switch = Switch(env)
    switch.attach(MAC_A, Cmac(env))
    with pytest.raises(ValueError, match="already attached"):
        switch.attach(MAC_A, Cmac(env))


def test_cmac_counters():
    env = Environment()
    switch = Switch(env, latency_ns=10)
    cmac_a, cmac_b = Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    pkt = packet()

    def proc():
        yield from cmac_a.tx(pkt)
        yield from cmac_a.tx(pkt)

    env.run(env.process(proc()))
    env.run()
    assert cmac_a.tx_frames == 2
    assert cmac_a.tx_bytes == 2 * pkt.wire_length
    assert cmac_b.rx_frames == 2
    assert cmac_b.rx_bytes == 2 * pkt.wire_length
    assert len(cmac_b.rx_queue) == 2


def test_detach_while_frame_in_flight_is_unroutable():
    """A port unplugged (shell reconfiguration) while a frame is crossing
    the switch must not receive it: membership is re-checked at delivery."""
    env = Environment()
    switch = Switch(env)
    cmac_a, cmac_b = Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)

    pkt = packet()
    serialise_ns = (pkt.wire_length + FRAME_OVERHEAD_BYTES) / CMAC_BANDWIDTH

    def sender():
        yield from cmac_a.tx(pkt)

    def unplug():
        # tx serialisation finishes first, then the frame sits in the
        # switch for latency_ns; detach inside that window.
        yield env.timeout(serialise_ns + switch.latency_ns / 2)
        switch.detach(MAC_B)

    env.process(sender())
    env.process(unplug())
    env.run()
    assert cmac_b.rx_frames == 0
    assert switch.unroutable == 1
    assert switch.forwarded == 0
