"""Tests for the runtime SimSanitizer (repro.analysis.sanitizer).

Each test attaches its *own* ``SimSanitizer`` instance (via
``env.sanitizer``) so deliberate violations never leak into the
process-wide sanitizer that the conftest gate inspects under
``REPRO_SANITIZE=1``.
"""

import pytest

from repro.analysis import SanitizerError, SimSanitizer
from repro.analysis.sanitizer import activate, current, deactivate
from repro.core.credit import Crediter
from repro.sim import Environment
from repro.telemetry import MetricsRegistry


def sanitized_env():
    env = Environment()
    env.sanitizer = SimSanitizer()
    return env


# ---------------------------------------------------------------- credits


def test_credit_leak_reported_and_names_the_guard():
    env = sanitized_env()
    crediter = Crediter(env, credits=4, name="v0-host-rd")

    def leaky():
        yield from crediter.acquire()  # repro: allow[RES001] the leak is the fixture

    env.process(leaky())
    env.run()
    env.sanitizer.check_drain(env)
    [violation] = env.sanitizer.violations
    assert violation.kind == "credit.leak"
    assert "v0-host-rd" in violation.message
    assert "1 leaked" in violation.message
    assert "v0-host-rd" in env.sanitizer.report()


def test_paired_acquire_release_is_clean():
    env = sanitized_env()
    crediter = Crediter(env, credits=4, name="v0-host-rd")

    def mover():
        yield from crediter.acquire()
        try:
            yield env.timeout(10)
        finally:
            crediter.release()

    env.process(mover())
    env.run()
    env.sanitizer.check_drain(env)
    assert env.sanitizer.violations == []


def test_wedged_credits_are_sabotage_not_leaks():
    env = sanitized_env()
    crediter = Crediter(env, credits=4, name="v0-host-rd")

    def tenant():
        yield from crediter.acquire()  # repro: allow[RES001] wedge() below accounts the deliberate leak
        crediter.wedge()

    env.process(tenant())
    env.run()
    env.sanitizer.check_drain(env)
    assert env.sanitizer.violations == []


def test_double_release_detected():
    env = sanitized_env()
    crediter = Crediter(env, credits=2, name="v0-card-wr")
    crediter.release()  # pool already full: a credit from nothing
    [violation] = env.sanitizer.violations
    assert violation.kind == "credit.double_release"
    assert "v0-card-wr" in violation.message


def test_reset_reclaim_budget_absorbs_late_releases():
    env = sanitized_env()
    crediter = Crediter(env, credits=2, name="v0-card-wr")

    def holder():
        yield from crediter.acquire()  # repro: allow[RES001] reset() below reclaims; the late release tests the budget

    env.process(holder())
    env.run()
    assert crediter.reset() == 1  # reclaims the in-flight credit
    crediter.release()  # the wiped request's release lands late: budgeted
    assert env.sanitizer.violations == []
    crediter.release()  # budget spent: now it IS a double release
    assert [v.kind for v in env.sanitizer.violations] == ["credit.double_release"]


def test_check_drain_scoped_to_environment():
    env_a, env_b = sanitized_env(), Environment()
    env_b.sanitizer = env_a.sanitizer
    crediter_b = Crediter(env_b, credits=2, name="other-env")

    def leak():
        yield from crediter_b.acquire()  # repro: allow[RES001] the leak is the fixture

    env_b.process(leak())
    env_b.run()
    env_a.sanitizer.check_drain(env_a)  # env_a has no leaks
    assert env_a.sanitizer.violations == []
    env_a.sanitizer.check_drain(env_b)
    assert [v.kind for v in env_a.sanitizer.violations] == ["credit.leak"]


# ----------------------------------------------------------- monotonicity


def test_negative_delay_schedule_is_a_violation():
    env = sanitized_env()
    env._schedule(env.event(), delay=-5.0, priority=1)
    [violation] = env.sanitizer.violations
    assert violation.kind == "monotonicity"
    assert "into the past" in violation.message


def test_past_dispatch_is_a_violation():
    env = Environment(initial_time=100.0)
    env.sanitizer = SimSanitizer()
    event = env.event()
    event._ok = True
    env._schedule(event, delay=-50.0, priority=1)
    env.step()  # dispatches the t=50 event after the clock reached t=100
    kinds = [v.kind for v in env.sanitizer.violations]
    assert kinds == ["monotonicity", "monotonicity"]
    assert "after clock reached" in env.sanitizer.violations[1].message


def test_normal_workload_is_monotonicity_clean():
    env = sanitized_env()

    def worker():
        for _ in range(10):
            yield env.timeout(7)

    env.process(worker())
    env.run()
    assert env.sanitizer.violations == []


# -------------------------------------------------------------- telemetry


@pytest.fixture
def global_sanitizer():
    """Install a fresh process-wide sanitizer; restore whatever the run
    had before (None, or the REPRO_SANITIZE singleton)."""
    previous = current()
    sanitizer = activate(SimSanitizer())
    yield sanitizer
    if previous is not None:
        activate(previous)
    else:
        deactivate()


def test_cross_registry_kind_clash_detected(global_sanitizer):
    node_a, node_b = MetricsRegistry(), MetricsRegistry()
    node_a.counter("pcie.replays").inc()
    node_b.gauge("pcie.replays").set(1)  # same register, different kind
    [violation] = global_sanitizer.violations
    assert violation.kind == "telemetry.type"
    assert "pcie.replays" in violation.message


def test_dynamic_metric_name_convention_enforced(global_sanitizer):
    registry = MetricsRegistry()
    domain = "QP3"  # dynamically built name TEL001 cannot see
    registry.counter(f"{domain}.ops").inc()
    [violation] = global_sanitizer.violations
    assert violation.kind == "telemetry.name"


def test_conforming_metrics_are_clean(global_sanitizer):
    registry = MetricsRegistry()
    registry.counter("net.qp.3.ops").inc()
    registry.histogram("pcie.latency_ns").observe(500)
    MetricsRegistry().counter("net.qp.3.ops").inc()  # same kind: fine
    assert global_sanitizer.violations == []


# ----------------------------------------------------------------- report


def test_strict_mode_raises_immediately():
    env = Environment()
    env.sanitizer = SimSanitizer(strict=True)
    crediter = Crediter(env, credits=1, name="strict-pool")
    with pytest.raises(SanitizerError, match="strict-pool"):
        crediter.release()


def test_report_and_reset():
    sanitizer = SimSanitizer()
    assert sanitizer.report() == "sanitizer: clean"
    sanitizer._violate("credit.leak", "guard 'x': 1 leaked")
    assert "1 violation(s)" in sanitizer.report()
    with pytest.raises(SanitizerError):
        sanitizer.raise_if_violations()
    sanitizer.reset()
    assert sanitizer.report() == "sanitizer: clean"
    sanitizer.raise_if_violations()  # clean: no raise
