"""Tests for the runtime SimSanitizer (repro.analysis.sanitizer).

Each test attaches its *own* ``SimSanitizer`` instance (via
``env.sanitizer``) so deliberate violations never leak into the
process-wide sanitizer that the conftest gate inspects under
``REPRO_SANITIZE=1``.
"""

import pytest

from repro.analysis import SanitizerError, SimSanitizer
from repro.analysis.sanitizer import activate, current, deactivate
from repro.core.credit import Crediter
from repro.sim import Environment
from repro.telemetry import MetricsRegistry


def sanitized_env():
    env = Environment()
    env.sanitizer = SimSanitizer()
    return env


# ---------------------------------------------------------------- credits


def test_credit_leak_reported_and_names_the_guard():
    env = sanitized_env()
    crediter = Crediter(env, credits=4, name="v0-host-rd")

    def leaky():
        yield from crediter.acquire()  # repro: allow[RES001] the leak is the fixture

    env.process(leaky())
    env.run()
    env.sanitizer.check_drain(env)
    [violation] = env.sanitizer.violations
    assert violation.kind == "credit.leak"
    assert "v0-host-rd" in violation.message
    assert "1 leaked" in violation.message
    assert "v0-host-rd" in env.sanitizer.report()


def test_paired_acquire_release_is_clean():
    env = sanitized_env()
    crediter = Crediter(env, credits=4, name="v0-host-rd")

    def mover():
        yield from crediter.acquire()
        try:
            yield env.timeout(10)
        finally:
            crediter.release()

    env.process(mover())
    env.run()
    env.sanitizer.check_drain(env)
    assert env.sanitizer.violations == []


def test_wedged_credits_are_sabotage_not_leaks():
    env = sanitized_env()
    crediter = Crediter(env, credits=4, name="v0-host-rd")

    def tenant():
        yield from crediter.acquire()  # repro: allow[RES001] wedge() below accounts the deliberate leak
        crediter.wedge()

    env.process(tenant())
    env.run()
    env.sanitizer.check_drain(env)
    assert env.sanitizer.violations == []


def test_double_release_detected():
    env = sanitized_env()
    crediter = Crediter(env, credits=2, name="v0-card-wr")
    crediter.release()  # pool already full: a credit from nothing
    [violation] = env.sanitizer.violations
    assert violation.kind == "credit.double_release"
    assert "v0-card-wr" in violation.message


def test_reset_reclaim_budget_absorbs_late_releases():
    env = sanitized_env()
    crediter = Crediter(env, credits=2, name="v0-card-wr")

    def holder():
        yield from crediter.acquire()  # repro: allow[RES001] reset() below reclaims; the late release tests the budget

    env.process(holder())
    env.run()
    assert crediter.reset() == 1  # reclaims the in-flight credit
    crediter.release()  # the wiped request's release lands late: budgeted
    assert env.sanitizer.violations == []
    crediter.release()  # budget spent: now it IS a double release
    assert [v.kind for v in env.sanitizer.violations] == ["credit.double_release"]


def test_check_drain_scoped_to_environment():
    env_a, env_b = sanitized_env(), Environment()
    env_b.sanitizer = env_a.sanitizer
    crediter_b = Crediter(env_b, credits=2, name="other-env")

    def leak():
        yield from crediter_b.acquire()  # repro: allow[RES001] the leak is the fixture

    env_b.process(leak())
    env_b.run()
    env_a.sanitizer.check_drain(env_a)  # env_a has no leaks
    assert env_a.sanitizer.violations == []
    env_a.sanitizer.check_drain(env_b)
    assert [v.kind for v in env_a.sanitizer.violations] == ["credit.leak"]


# ----------------------------------------------------------- monotonicity


def test_negative_delay_schedule_is_a_violation():
    env = sanitized_env()
    env._schedule(env.event(), delay=-5.0, priority=1)
    [violation] = env.sanitizer.violations
    assert violation.kind == "monotonicity"
    assert "into the past" in violation.message


def test_past_dispatch_is_a_violation():
    env = Environment(initial_time=100.0)
    env.sanitizer = SimSanitizer()
    event = env.event()
    event._ok = True
    env._schedule(event, delay=-50.0, priority=1)
    env.step()  # dispatches the t=50 event after the clock reached t=100
    kinds = [v.kind for v in env.sanitizer.violations]
    assert kinds == ["monotonicity", "monotonicity"]
    assert "after clock reached" in env.sanitizer.violations[1].message


def test_normal_workload_is_monotonicity_clean():
    env = sanitized_env()

    def worker():
        for _ in range(10):
            yield env.timeout(7)

    env.process(worker())
    env.run()
    assert env.sanitizer.violations == []


# -------------------------------------------------------------- telemetry


@pytest.fixture
def global_sanitizer():
    """Install a fresh process-wide sanitizer; restore whatever the run
    had before (None, or the REPRO_SANITIZE singleton)."""
    previous = current()
    sanitizer = activate(SimSanitizer())
    yield sanitizer
    if previous is not None:
        activate(previous)
    else:
        deactivate()


def test_cross_registry_kind_clash_detected(global_sanitizer):
    node_a, node_b = MetricsRegistry(), MetricsRegistry()
    node_a.counter("pcie.replays").inc()
    node_b.gauge("pcie.replays").set(1)  # same register, different kind
    [violation] = global_sanitizer.violations
    assert violation.kind == "telemetry.type"
    assert "pcie.replays" in violation.message


def test_dynamic_metric_name_convention_enforced(global_sanitizer):
    registry = MetricsRegistry()
    domain = "QP3"  # dynamically built name TEL001 cannot see
    registry.counter(f"{domain}.ops").inc()
    [violation] = global_sanitizer.violations
    assert violation.kind == "telemetry.name"


def test_conforming_metrics_are_clean(global_sanitizer):
    registry = MetricsRegistry()
    registry.counter("net.qp.3.ops").inc()
    registry.histogram("pcie.latency_ns").observe(500)
    MetricsRegistry().counter("net.qp.3.ops").inc()  # same kind: fine
    assert global_sanitizer.violations == []


# ------------------------------------------------------- stuck-at-drain


def orphan_workload(env):
    """A process parked on an event no producer will ever trigger — the
    runtime shape of an EVT001 lost wakeup."""

    def waiter():
        yield env.event()  # nobody holds a reference: orphaned forever

    env.process(waiter(), name="orphan-waiter")

    def worker():
        yield env.timeout(30)

    env.process(worker(), name="worker")


def test_stuck_at_drain_detects_orphaned_waiter():
    env = sanitized_env()
    orphan_workload(env)
    env.run()
    [entry] = env.sanitizer.stuck_ledger(env)
    assert entry.process == "orphan-waiter"
    # Attribution points at the fixture's creation site, not the engine.
    assert "test_sanitizer.py" in entry.origin
    env.sanitizer.check_stuck_at_drain(env)
    [violation] = env.sanitizer.violations
    assert violation.kind == "event.stuck_at_drain"
    assert "orphan-waiter" in violation.message


def test_stuck_at_drain_clean_when_workload_quiesces():
    env = sanitized_env()

    def waiter(ev):
        yield ev

    ev = env.event()
    env.process(waiter(ev), name="waiter")

    def producer():
        yield env.timeout(10)
        ev.succeed()

    env.process(producer(), name="producer")
    env.run()
    assert env.sanitizer.stuck_ledger(env) == []
    env.sanitizer.check_stuck_at_drain(env)
    assert env.sanitizer.violations == []


def test_stuck_ledger_scoped_to_environment():
    env_a, env_b = sanitized_env(), Environment()
    env_b.sanitizer = env_a.sanitizer
    orphan_workload(env_b)
    env_b.run()
    assert env_a.sanitizer.stuck_ledger(env_a) == []
    assert len(env_a.sanitizer.stuck_ledger(env_b)) == 1


def test_stuck_ledger_is_deterministic_across_double_run():
    """Two identically seeded runs render byte-identical ledgers — the
    ledger is diffable evidence, not a heap-order artifact."""

    def run_once():
        env = sanitized_env()
        orphan_workload(env)
        orphan_workload(env)  # two orphans: ordering must be stable too
        env.run()
        return "\n".join(e.render() for e in env.sanitizer.stuck_ledger(env))

    first, second = run_once(), run_once()
    assert first == second
    assert first.count("parked at drain") == 2


def test_stuck_ledger_ignores_pending_producers():
    """A waiter whose wakeup is still scheduled is not stuck."""
    env = sanitized_env()

    def waiter():
        yield env.timeout(50)

    env.process(waiter(), name="patient")
    env.run(until=10)  # stop mid-flight: the timeout is still queued
    assert env.sanitizer.stuck_ledger(env) == []


# ----------------------------------------------------------------- report


def test_strict_mode_raises_immediately():
    env = Environment()
    env.sanitizer = SimSanitizer(strict=True)
    crediter = Crediter(env, credits=1, name="strict-pool")
    with pytest.raises(SanitizerError, match="strict-pool"):
        crediter.release()


def test_report_and_reset():
    sanitizer = SimSanitizer()
    assert sanitizer.report() == "sanitizer: clean"
    sanitizer._violate("credit.leak", "guard 'x': 1 leaked")
    assert "1 violation(s)" in sanitizer.report()
    with pytest.raises(SanitizerError):
        sanitizer.raise_if_violations()
    sanitizer.reset()
    assert sanitizer.report() == "sanitizer: clean"
    sanitizer.raise_if_violations()  # clean: no raise
