"""Tests for full RoCE v2 packet assembly/parsing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    AethHeader,
    BthHeader,
    MacAddress,
    ParseError,
    RethHeader,
    RocePacket,
    RoceOpcode,
)

MAC_A = MacAddress(0x020000000001)
MAC_B = MacAddress(0x020000000002)
IP_A = 0x0A000001
IP_B = 0x0A000002


def build_write_only(payload=b"hello world!"):
    return RocePacket.build(
        src_mac=MAC_A,
        dst_mac=MAC_B,
        src_ip=IP_A,
        dst_ip=IP_B,
        bth=BthHeader(
            opcode=RoceOpcode.RDMA_WRITE_ONLY, dest_qp=7, psn=100, ack_request=True
        ),
        reth=RethHeader(vaddr=0x1000, rkey=3, dma_length=len(payload)),
        payload=payload,
    )


def test_wire_roundtrip_write_only():
    pkt = build_write_only()
    raw = pkt.to_bytes()
    assert len(raw) == pkt.wire_length
    back = RocePacket.from_bytes(raw)
    assert back.bth.opcode == RoceOpcode.RDMA_WRITE_ONLY
    assert back.bth.psn == 100
    assert back.reth.vaddr == 0x1000
    assert back.payload == b"hello world!"
    assert back.aeth is None


def test_wire_roundtrip_ack():
    pkt = RocePacket.build(
        src_mac=MAC_B,
        dst_mac=MAC_A,
        src_ip=IP_B,
        dst_ip=IP_A,
        bth=BthHeader(opcode=RoceOpcode.ACKNOWLEDGE, dest_qp=9, psn=55),
        aeth=AethHeader(syndrome=0, msn=3),
    )
    back = RocePacket.from_bytes(pkt.to_bytes())
    assert back.aeth.msn == 3
    assert not back.aeth.is_nak
    assert back.payload == b""
    assert back.reth is None


def test_lengths_are_consistent():
    pkt = build_write_only(b"x" * 100)
    # eth 14 + ip 20 + udp 8 + bth 12 + reth 16 + payload 100 + icrc 4
    assert pkt.wire_length == 14 + 20 + 8 + 12 + 16 + 100 + 4
    assert pkt.udp.length == 8 + pkt.transport_length
    assert pkt.ip.total_length == 20 + pkt.udp.length


def test_timing_only_packet_zero_fills():
    pkt = RocePacket.build(
        src_mac=MAC_A,
        dst_mac=MAC_B,
        src_ip=IP_A,
        dst_ip=IP_B,
        bth=BthHeader(opcode=RoceOpcode.RDMA_WRITE_MIDDLE, dest_qp=1, psn=0),
        payload=None,
        payload_length=256,
    )
    back = RocePacket.from_bytes(pkt.to_bytes())
    assert back.payload == bytes(256)


def test_icrc_detects_payload_corruption():
    raw = bytearray(build_write_only().to_bytes())
    raw[-10] ^= 0x01  # flip a payload bit
    with pytest.raises(ParseError, match="ICRC"):
        RocePacket.from_bytes(bytes(raw))


def test_non_roce_udp_port_rejected():
    pkt = build_write_only()
    pkt.udp.dst_port = 53
    with pytest.raises(ParseError, match="not RoCE"):
        RocePacket.from_bytes(pkt.to_bytes())


def test_describe_mentions_opcode_and_qp():
    text = build_write_only().describe()
    assert "RDMA_WRITE_ONLY" in text
    assert "qp=7" in text


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(min_size=0, max_size=4096))
def test_wire_roundtrip_property(payload):
    pkt = build_write_only(payload) if payload else RocePacket.build(
        src_mac=MAC_A,
        dst_mac=MAC_B,
        src_ip=IP_A,
        dst_ip=IP_B,
        bth=BthHeader(opcode=RoceOpcode.SEND_ONLY, dest_qp=2, psn=1),
        payload=payload,
    )
    back = RocePacket.from_bytes(pkt.to_bytes())
    assert back.payload == payload
    assert back.bth.psn == pkt.bth.psn
