"""Interrupted waiters must not swallow items/grants (regression tests).

The bug class: a process blocked on ``Store.get`` (or a Resource/Container
wait) is interrupted — e.g. user logic wiped by partial reconfiguration —
leaving an orphaned waiter event queued inside the resource.  Without
abandonment handling the next ``put`` delivers the item into the dead
process and it vanishes.
"""

import pytest

from repro.sim import Container, Environment, Interrupt, Resource, Store


def test_interrupted_store_getter_does_not_swallow_item():
    env = Environment()
    store = Store(env)
    received = []

    def victim():
        try:
            yield store.get()
        except Interrupt:
            return

    def survivor():
        item = yield store.get()
        received.append(item)

    v = env.process(victim())
    env.process(survivor())

    def orchestrate():
        yield env.timeout(10)
        v.interrupt()
        yield env.timeout(10)
        yield store.put("precious")

    env.process(orchestrate())
    env.run()
    assert received == ["precious"]


def test_interrupted_store_putter_item_discarded():
    """A dead producer's queued put must not deliver a ghost item."""
    env = Environment()
    store = Store(env, capacity=1)
    got = []

    def producer_dies():
        yield store.put("a")  # fills the store
        try:
            yield store.put("ghost")  # blocks; will be interrupted
        except Interrupt:
            return

    def consumer():
        yield env.timeout(20)
        first = yield store.get()
        got.append(first)
        # Nothing else should ever arrive.
        second = store.try_get()
        got.append(second)

    p = env.process(producer_dies())

    def killer():
        yield env.timeout(10)
        p.interrupt()

    env.process(killer())
    env.process(consumer())
    env.run()
    assert got == ["a", None]


def test_interrupted_resource_waiter_skipped_on_release():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        req = res.request()
        yield req
        yield env.timeout(100)
        res.release(req)

    def victim():
        req = res.request()
        try:
            yield req
        except Interrupt:
            return
        order.append("victim")  # must never run
        res.release(req)

    def survivor():
        req = res.request()
        yield req
        order.append(("survivor", env.now))
        res.release(req)

    env.process(holder())
    v = env.process(victim())
    env.process(survivor())

    def killer():
        yield env.timeout(50)
        v.interrupt()

    env.process(killer())
    env.run()
    assert order == [("survivor", 100)]


def test_interrupted_container_getter_skipped():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    got = []

    def victim():
        try:
            yield tank.get(10)
        except Interrupt:
            return

    def survivor():
        yield tank.get(10)
        got.append(env.now)

    v = env.process(victim())
    env.process(survivor())

    def orchestrate():
        yield env.timeout(5)
        v.interrupt()
        yield env.timeout(5)
        yield tank.put(10)

    env.process(orchestrate())
    env.run()
    assert got == [10]
    assert tank.level == 0


def test_app_reconfig_then_datapath_still_works():
    """End-to-end regression: swap kernels, then run a transfer."""
    from repro import (
        CThread, Driver, Environment, LocalSg, Oper, ServiceConfig,
        SgEntry, Shell, ShellConfig,
    )
    from repro.apps import AesEcbApp, HllApp
    from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services

    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False)))
    driver = Driver(env, shell)
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        "u55c", shell.config.services, shell.shell_id,
        sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    bs_hll = flow.app_flow(checkpoint, ["hll"]).bitstream
    bs_aes = flow.app_flow(checkpoint, ["aes_ecb"]).bitstream

    def main():
        ct = CThread(driver, 0, pid=1)
        yield env.process(driver.reconfigure_app(bs_hll, 0, HllApp()))
        buf = yield from ct.get_mem(8192)
        yield from ct.invoke(
            Oper.LOCAL_READ, SgEntry(local=LocalSg(src_addr=buf.vaddr, src_len=8192))
        )
        yield from ct.wait_interrupt()
        # Swap kernels mid-flight: HLL's lanes are blocked on stream reads.
        yield env.process(driver.reconfigure_app(bs_aes, 0, AesEcbApp()))
        src = yield from ct.get_mem(8192)
        dst = yield from ct.get_mem(8192)
        ct.write_buffer(src.vaddr, b"\x11" * 8192)
        yield from ct.invoke(
            Oper.LOCAL_TRANSFER,
            SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=8192,
                                  dst_addr=dst.vaddr, dst_len=8192)),
        )
        return ct.read_buffer(dst.vaddr, 8192)

    ciphertext = env.run(env.process(main()))
    assert len(ciphertext) == 8192
    assert ciphertext != b"\x11" * 8192  # actually encrypted
