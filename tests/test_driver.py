"""Tests for the driver: memory management, faults, migration, isolation."""

import pytest

from repro import (
    AllocType,
    CThread,
    Driver,
    Environment,
    LocalSg,
    MemLocation,
    Oper,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
    StreamType,
)
from repro.apps import PassThroughApp
from repro.driver import DriverError
from repro.mem import SegmentationFault


def make_system(**shell_kw):
    env = Environment()
    shell = Shell(env, ShellConfig(**shell_kw))
    driver = Driver(env, shell)
    return env, shell, driver


def test_open_close_lifecycle():
    env, shell, driver = make_system()
    ctx = driver.open(1, 0)
    assert ctx.pid == 1
    with pytest.raises(DriverError):
        driver.open(1, 0)  # duplicate pid
    driver.close(1)
    with pytest.raises(DriverError):
        driver.close(1)


def test_open_invalid_vfpga():
    env, shell, driver = make_system(num_vfpgas=1)
    with pytest.raises(DriverError):
        driver.open(1, 5)


def test_get_mem_maps_and_prefills_tlb():
    env, shell, driver = make_system()
    driver.open(1, 0)

    def main():
        alloc = yield from driver.get_mem(1, 4096)
        return alloc

    alloc = env.run(env.process(main()))
    mmu = shell.dynamic.mmus[0]
    # Prefilled: a lookup hits without a walk.
    assert mmu.tlb.lookup(alloc.vaddr) is not None
    # Page table has a host frame.
    entry = driver.processes[1].page_table.walk(alloc.vaddr)
    assert entry.host_paddr is not None
    assert entry.location is MemLocation.HOST


def test_get_mem_page_size_mismatch_rejected():
    env, shell, driver = make_system()  # shell MMU uses 2 MB pages
    driver.open(1, 0)

    def main():
        yield from driver.get_mem(1, 4096, AllocType.REG)  # 4 KB pages

    env.process(main())
    with pytest.raises(DriverError, match="page size"):
        env.run()


def test_buffer_write_read_via_page_table():
    env, shell, driver = make_system()
    driver.open(1, 0)

    def main():
        alloc = yield from driver.get_mem(1, 1 << 22)  # spans 2 huge pages
        return alloc

    alloc = env.run(env.process(main()))
    blob = bytes(range(256)) * 32
    # Write across the page boundary.
    boundary = alloc.vaddr + alloc.page_size - 1000
    driver.write_buffer(1, boundary, blob)
    assert driver.read_buffer(1, boundary, len(blob)) == blob


def test_unmapped_access_is_segfault():
    env, shell, driver = make_system()
    driver.open(1, 0)
    with pytest.raises(SegmentationFault):
        driver.read_buffer(1, 0xDEAD000, 16)


def test_free_mem_invalidates_tlb():
    env, shell, driver = make_system()
    driver.open(1, 0)

    def main():
        alloc = yield from driver.get_mem(1, 4096)
        return alloc

    alloc = env.run(env.process(main()))
    driver.free_mem(1, alloc)
    assert shell.dynamic.mmus[0].tlb.lookup(alloc.vaddr) is None
    with pytest.raises(SegmentationFault):
        driver.read_buffer(1, alloc.vaddr, 4)


def test_offload_and_sync_migrate_data():
    env, shell, driver = make_system()
    driver.open(1, 0)
    payload = b"migrate me" * 100

    def main():
        alloc = yield from driver.get_mem(1, 4096)
        driver.write_buffer(1, alloc.vaddr, payload)
        yield from driver.offload(1, alloc.vaddr, 4096)
        entry = driver.processes[1].page_table.walk(alloc.vaddr)
        assert entry.location is MemLocation.CARD
        # Data landed in HBM at the card frame.
        card_data = shell.dynamic.hbm.read_now(entry.card_paddr, len(payload))
        assert card_data == payload
        # Mutate on card, then sync back.
        shell.dynamic.hbm.write_now(entry.card_paddr, b"CARD!")
        yield from driver.sync(1, alloc.vaddr, 4096)
        assert entry.location is MemLocation.HOST
        return driver.read_buffer(1, alloc.vaddr, 5)

    assert env.run(env.process(main())) == b"CARD!"
    assert driver.migrated_bytes > 0


def test_card_access_page_faults_and_migrates():
    """A CARD-stream access to a HOST-resident page triggers a migration."""
    env, shell, driver = make_system(num_vfpgas=1)
    shell.load_app(0, PassThroughApp(num_streams=1, stream=StreamType.CARD))
    ct = CThread(driver, 0, pid=7)
    payload = bytes(range(256)) * 16

    def main():
        src = yield from ct.get_mem(len(payload))
        dst = yield from ct.get_mem(len(payload))
        ct.write_buffer(src.vaddr, payload)
        # No explicit offload: first card access faults + migrates.
        sg = SgEntry(
            local=LocalSg(
                src_addr=src.vaddr, src_len=len(payload),
                dst_addr=dst.vaddr, dst_len=len(payload),
                src_stream=StreamType.CARD, dst_stream=StreamType.CARD,
            )
        )
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        yield from driver.sync(7, dst.vaddr, len(payload))
        return ct.read_buffer(dst.vaddr, len(payload))

    assert env.run(env.process(main())) == payload
    assert driver.page_faults >= 2  # src and dst pages


def test_page_fault_charges_migration_time():
    env, shell, driver = make_system()
    driver.open(1, 0)

    def main():
        alloc = yield from driver.get_mem(1, 4096)
        before = env.now
        yield from driver.offload(1, alloc.vaddr, 4096)
        return env.now - before

    elapsed = env.run(env.process(main()))
    # 2 MB page over ~12 GB/s plus fault overhead: at least 100 us.
    assert elapsed > 100_000


def test_memory_isolation_between_processes():
    """Two processes get disjoint physical frames."""
    env, shell, driver = make_system(num_vfpgas=2)
    driver.open(1, 0)
    driver.open(2, 1)

    def main():
        a = yield from driver.get_mem(1, 4096)
        b = yield from driver.get_mem(2, 4096)
        return a, b

    a, b = env.run(env.process(main()))
    pa = driver.processes[1].page_table.walk(a.vaddr).host_paddr
    pb = driver.processes[2].page_table.walk(b.vaddr).host_paddr
    assert pa != pb
    driver.write_buffer(1, a.vaddr, b"AAAA")
    driver.write_buffer(2, b.vaddr, b"BBBB")
    assert driver.read_buffer(1, a.vaddr, 4) == b"AAAA"
    assert driver.read_buffer(2, b.vaddr, 4) == b"BBBB"


def test_tlb_miss_falls_back_to_driver_walk():
    """Evict the TLB, access again: the driver walk restores it."""
    env, shell, driver = make_system()
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=3)

    def main():
        src = yield from ct.get_mem(4096)
        dst = yield from ct.get_mem(4096)
        ct.write_buffer(src.vaddr, b"walk me" + bytes(4089))
        mmu = shell.dynamic.mmus[0]
        mmu.tlb.invalidate_all()
        walks_before = driver.tlb_walks
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                   dst_addr=dst.vaddr, dst_len=4096))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        assert driver.tlb_walks > walks_before
        return ct.read_buffer(dst.vaddr, 7)

    assert env.run(env.process(main())) == b"walk me"
