"""Congestion datapath tests: egress queueing, ECN marking, PFC pause /
storm detection, DCQCN rate control, the leaf/spine topology and the
``net.ecn_suppress`` / ``net.pause_drop`` fault sites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FpgaCluster
from repro.core import ServiceConfig
from repro.driver.report import card_report
from repro.faults import (
    NET_ECN_SUPPRESS,
    NET_PAUSE_DROP,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.health import PfcStormError
from repro.mem import SparseMemory
from repro.net import (
    ECN_CE,
    ECN_ECT0,
    ECN_NOT_ECT,
    BthHeader,
    Cmac,
    DcqcnConfig,
    LeafSpineTopology,
    MacAddress,
    RdmaConfig,
    RdmaStack,
    RocePacket,
    RoceOpcode,
    Switch,
    SwitchConfig,
)
from repro.net.cmac import CMAC_BANDWIDTH, FRAME_OVERHEAD_BYTES
from repro.net.qp import DcqcnState
from repro.sim import Environment
from repro.telemetry import ClusterTelemetry

MAC_A = MacAddress(0x02_21_01)
MAC_B = MacAddress(0x02_21_02)
MAC_C = MacAddress(0x02_21_03)


def packet(src=MAC_A, dst=MAC_B, payload=b"x" * 1024, ecn=ECN_ECT0,
           psn=0, src_port=49152):
    return RocePacket.build(
        src_mac=src, dst_mac=dst, src_ip=1, dst_ip=2,
        bth=BthHeader(opcode=RoceOpcode.SEND_ONLY, dest_qp=1, psn=psn),
        payload=payload, ecn=ecn, src_port=src_port,
    )


def wire_ns(pkt):
    return (pkt.wire_length + FRAME_OVERHEAD_BYTES) / CMAC_BANDWIDTH


# --------------------------------------------------------- egress queueing


def test_egress_queue_serialises_concurrent_arrivals():
    """Two frames reaching one egress port at once leave one wire apart."""
    env = Environment()
    switch = Switch(env, latency_ns=0)
    cmac_a, cmac_b, cmac_c = Cmac(env), Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    switch.attach(MAC_C, cmac_c)
    arrivals = []
    cmac_b.rx_taps.append(lambda now, pkt: arrivals.append(now))

    def sender(cmac, src):
        yield from cmac.tx(packet(src=src))

    env.process(sender(cmac_a, MAC_A))
    env.process(sender(cmac_c, MAC_C))
    env.run()
    assert len(arrivals) == 2
    # Both frames finish serialising onto the switch at the same instant;
    # the egress queue must space the deliveries by one wire time.
    assert arrivals[1] - arrivals[0] == pytest.approx(wire_ns(packet()))


def test_ecn_marked_above_threshold_only_for_ect():
    env = Environment()
    switch = Switch(env, config=SwitchConfig(ecn_threshold_bytes=0))
    cmac_a, cmac_b = Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    seen = []
    cmac_b.rx_taps.append(lambda now, pkt: seen.append(pkt.ip.ecn))

    def sender():
        yield from cmac_a.tx(packet(ecn=ECN_ECT0))
        yield from cmac_a.tx(packet(ecn=ECN_NOT_ECT))

    env.run(env.process(sender()))
    env.run()
    assert seen == [ECN_CE, ECN_NOT_ECT]
    assert switch.ecn_marks == 1
    assert switch.counters()["ecn_marks"] == 1


def test_ecn_mark_copies_instead_of_mutating():
    """CE marking must not scribble on the sender's retransmit buffer."""
    env = Environment()
    switch = Switch(env, config=SwitchConfig(ecn_threshold_bytes=0))
    cmac_a, cmac_b = Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    pkt = packet(ecn=ECN_ECT0)
    env.run(env.process(cmac_a.tx(pkt)))
    env.run()
    assert pkt.ip.ecn == ECN_ECT0


def test_tail_drop_at_capacity():
    env = Environment()
    switch = Switch(env, config=SwitchConfig(egress_capacity_bytes=2048))
    cmac_a, cmac_b, cmac_c = Cmac(env), Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    switch.attach(MAC_C, cmac_c)

    def blast(cmac, src):
        for psn in range(6):
            yield from cmac.tx(packet(src=src, psn=psn))

    env.process(blast(cmac_a, MAC_A))
    env.process(blast(cmac_c, MAC_C))
    env.run()
    assert switch.tail_drops > 0
    assert switch.dropped == switch.tail_drops
    assert cmac_b.rx_frames == 12 - switch.tail_drops
    assert switch.counters()["tail_drops"] == switch.tail_drops


# ------------------------------------------------------------------- PFC


def test_pfc_pause_resume_is_lossless():
    env = Environment()
    switch = Switch(env, config=SwitchConfig(
        pfc_enabled=True, xoff_bytes=2048, xon_bytes=1024,
    ))
    cmac_a, cmac_b, cmac_c = Cmac(env), Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    switch.attach(MAC_C, cmac_c)

    def blast(cmac, src):
        for psn in range(20):
            yield from cmac.tx(packet(src=src, psn=psn))

    env.process(blast(cmac_a, MAC_A))
    env.process(blast(cmac_c, MAC_C))
    env.run()
    # The overloaded egress pushed back instead of dropping.
    assert switch.pause_frames_sent > 0
    assert switch.pause_resumes_sent > 0
    assert cmac_a.pause_frames_rx + cmac_c.pause_frames_rx > 0
    assert switch.tail_drops == 0
    assert cmac_b.rx_frames == 40
    assert switch.pfc_storms == 0


def test_pfc_storm_is_typed_error_not_a_hang():
    """A wedged receiver (never drains its rx queue) must trip the storm
    watchdog: a typed PfcStormError is recorded, the stuck port is muted
    so traffic drains, and the simulation quiesces."""
    env = Environment()
    switch = Switch(env, config=SwitchConfig(storm_threshold_ns=50_000.0))
    cmac_a = Cmac(env)
    # Victim advertises a 2-frame watermark and nobody ever calls rx().
    wedged = Cmac(env, rx_xoff_frames=2, rx_xon_frames=1)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, wedged)
    storms = []
    switch.on_pfc_storm = storms.append

    def blast():
        for psn in range(150):
            yield from cmac_a.tx(packet(psn=psn))

    env.run(env.process(blast()))
    env.run()  # must quiesce, not livelock on pause refreshes
    assert switch.pfc_storms >= 1
    assert storms and isinstance(storms[0], PfcStormError)
    assert isinstance(switch.pfc_storm_errors[0], PfcStormError)
    assert switch.pfc_storm_errors[0].paused_ns >= 50_000.0
    # Muting the port let the backlog drain to the wedged host.
    assert wedged.rx_frames == 150
    assert switch.counters()["pfc_storms"] == switch.pfc_storms


def test_pause_drop_fault_site_breaks_pfc():
    env = Environment()
    switch = Switch(env, config=SwitchConfig(
        pfc_enabled=True, xoff_bytes=2048, xon_bytes=1024,
    ))
    FaultInjector(FaultPlan(rules=(
        FaultRule(site=NET_PAUSE_DROP, probability=1.0),
    ))).arm(switch=switch)
    cmac_a, cmac_b, cmac_c = Cmac(env), Cmac(env), Cmac(env)
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    switch.attach(MAC_C, cmac_c)

    def blast(cmac, src):
        for psn in range(20):
            yield from cmac.tx(packet(src=src, psn=psn))

    env.process(blast(cmac_a, MAC_A))
    env.process(blast(cmac_c, MAC_C))
    env.run()
    # Every pause frame was eaten on the wire: the senders never slowed.
    assert switch.pause_frames_dropped > 0
    assert switch.pause_frames_sent == 0
    assert cmac_a.pause_frames_rx == 0
    assert cmac_c.pause_frames_rx == 0


# ------------------------------------------------------------------ DCQCN


def make_state(**overrides):
    params = dict(
        line_rate=CMAC_BANDWIDTH, min_rate=0.125, alpha_g=1.0 / 16.0,
        alpha_update_ns=55_000.0, rate_increase_ns=55_000.0,
        fast_recovery_rounds=5, additive_increase=0.005,
        hyper_increase=0.05,
    )
    params.update(overrides)
    return DcqcnState(**params)


def test_dcqcn_cut_and_staged_recovery():
    state = make_state()
    assert state.current_rate == CMAC_BANDWIDTH
    state.on_cnp(0.0)
    # alpha starts at 1: the first CNP halves the rate.
    assert state.current_rate == pytest.approx(CMAC_BANDWIDTH / 2)
    assert state.target_rate == pytest.approx(CMAC_BANDWIDTH)
    previous = state.current_rate
    for round_no in range(1, 20):
        state.advance(round_no * 55_000.0)
        assert state.current_rate >= previous
        assert state.current_rate <= CMAC_BANDWIDTH
        previous = state.current_rate
    # Fast recovery alone converges most of the way back to the target.
    assert state.current_rate > 0.95 * CMAC_BANDWIDTH


def test_dcqcn_never_cuts_below_min_rate():
    state = make_state(min_rate=0.5)
    for i in range(50):
        state.on_cnp(float(i))
    assert state.current_rate == 0.5


def test_dcqcn_pacing_gap_reserves_slots():
    state = make_state()
    assert state.pacing_gap(0.0, 1250) == 0.0
    # The second frame at the same instant must wait one serialisation.
    gap = state.pacing_gap(0.0, 1250)
    assert gap == pytest.approx(1250 / CMAC_BANDWIDTH)


def test_dcqcn_idle_does_not_recover_rate():
    """The restart problem: a stalled flow must not resume at a fully
    recovered rate — an idle gap earns at most one increase round."""
    state = make_state()
    state.on_cnp(0.0)
    cut = state.current_rate
    state.pacing_gap(10_000_000.0, 1250)  # 10 ms idle
    one_round = (cut + state.target_rate) / 2
    assert state.current_rate == pytest.approx(one_round)


def test_dcqcn_initial_rate_override():
    state = make_state(initial_rate=CMAC_BANDWIDTH / 8)
    assert state.current_rate == pytest.approx(CMAC_BANDWIDTH / 8)
    assert state.target_rate == pytest.approx(CMAC_BANDWIDTH / 8)


def rdma_pair(env, fabric, config, attach=None):
    attach = attach or (lambda mac, cmac: fabric.attach(mac, cmac))
    stacks, memories = [], []
    for i, (mac_val, ip) in enumerate(
        [(0x02_00_2D01, 0xA000001), (0x02_00_2D02, 0xA000002)]
    ):
        mac = MacAddress(mac_val)
        cmac = Cmac(env, name=f"cc{i}")
        attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, ip, config, name=f"cc{i}")
        memory = SparseMemory(1 << 22)

        def read_local(vaddr, length, memory=memory):
            yield env.timeout(length / 12.0)
            return memory.read(vaddr, length)

        def write_local(vaddr, data, length, memory=memory):
            yield env.timeout(length / 12.0)
            if data is not None:
                memory.write(vaddr, data)

        stack.bind_memory(read_local, write_local)
        stacks.append(stack)
        memories.append(memory)
    qa = stacks[0].create_qp(1, psn=0)
    qb = stacks[1].create_qp(2, psn=0)
    qa.connect(qb.local)
    qb.connect(qa.local)
    return stacks, memories


def test_dcqcn_cnp_loop_end_to_end():
    """CE marks at the switch become CNPs at the responder and a rate
    cut at the requester, and the payload still arrives intact."""
    env = Environment()
    switch = Switch(env, config=SwitchConfig(ecn_threshold_bytes=0))
    config = RdmaConfig(dcqcn=DcqcnConfig(enabled=True))
    (a, b), (mem_a, mem_b) = rdma_pair(env, switch, config)
    payload = bytes(range(256)) * 64
    mem_a.write(0x1000, payload)

    def proc():
        yield from a.rdma_write(1, 0x1000, 0x2000, len(payload))

    env.run(env.process(proc()))
    env.run()
    assert mem_b.read(0x2000, len(payload)) == payload
    assert switch.ecn_marks > 0
    assert b.stats["ecn_ce_received"] > 0
    assert b.stats["cnps_sent"] > 0
    assert a.stats["cnps_received"] > 0
    state = a.qp_rates[1]
    assert state.cnps == a.stats["cnps_received"]
    assert state.current_rate < CMAC_BANDWIDTH


def test_dcqcn_disabled_sends_not_ect():
    env = Environment()
    switch = Switch(env, config=SwitchConfig(ecn_threshold_bytes=0))
    config = RdmaConfig()  # dcqcn off
    (a, b), (mem_a, mem_b) = rdma_pair(env, switch, config)
    mem_a.write(0x1000, b"q" * 4096)

    def proc():
        yield from a.rdma_write(1, 0x1000, 0x2000, 4096)

    env.run(env.process(proc()))
    env.run()
    # Not-ECT traffic is never marked, so no CNPs and no rate state.
    assert switch.ecn_marks == 0
    assert b.stats["cnps_sent"] == 0
    assert a.qp_rates == {}


def test_ecn_suppress_fault_site_starves_the_control_loop():
    env = Environment()
    switch = Switch(env, config=SwitchConfig(ecn_threshold_bytes=0))
    FaultInjector(FaultPlan(rules=(
        FaultRule(site=NET_ECN_SUPPRESS, probability=1.0),
    ))).arm(switch=switch)
    config = RdmaConfig(dcqcn=DcqcnConfig(enabled=True))
    (a, b), (mem_a, _) = rdma_pair(env, switch, config)
    mem_a.write(0x1000, b"z" * 8192)

    def proc():
        yield from a.rdma_write(1, 0x1000, 0x2000, 8192)

    env.run(env.process(proc()))
    env.run()
    # Marks were suppressed on the wire: no CNPs, no cut.
    assert switch.ecn_suppressed > 0
    assert switch.ecn_marks == 0
    assert b.stats["ecn_ce_received"] == 0
    assert b.stats["cnps_sent"] == 0
    assert a.qp_rates[1].current_rate == CMAC_BANDWIDTH


# ------------------------------------------------------------- leaf/spine


def test_leaf_spine_rdma_write_crosses_fabric():
    env = Environment()
    topo = LeafSpineTopology(env, leaves=2, spines=2)
    config = RdmaConfig()
    (a, b), (mem_a, mem_b) = rdma_pair(
        env, topo, config, attach=lambda mac, cmac: topo.attach(mac, cmac)
    )
    payload = bytes((7 * i) % 256 for i in range(16384))
    mem_a.write(0x1000, payload)

    def proc():
        yield from a.rdma_write(1, 0x1000, 0x2000, len(payload))

    env.run(env.process(proc()))
    env.run()
    assert mem_b.read(0x2000, len(payload)) == payload
    # Hosts landed on different leaves, so the write crossed a spine.
    assert sum(spine.forwarded for spine in topo.spines) > 0


def test_leaf_spine_ecmp_spreads_and_is_deterministic():
    def deliveries(run_seed_ports):
        env = Environment()
        topo = LeafSpineTopology(env, leaves=2, spines=2)
        cmac_a, cmac_b = Cmac(env), Cmac(env)
        topo.attach(MAC_A, cmac_a, leaf=0)
        topo.attach(MAC_B, cmac_b, leaf=1)

        def blast():
            for i, port in enumerate(run_seed_ports):
                yield from cmac_a.tx(packet(psn=i, src_port=port))

        env.run(env.process(blast()))
        env.run()
        return [spine.forwarded for spine in topo.spines], cmac_b.rx_frames

    ports = [49152 + i for i in range(32)]
    spread, received = deliveries(ports)
    assert received == 32
    assert sum(spread) == 32
    # CRC32 over the flow tuple spreads distinct source ports across
    # both spines...
    assert all(count > 0 for count in spread)
    # ...and the hash is deterministic: same flows, same spread.
    assert deliveries(ports)[0] == spread


def test_leaf_spine_oversubscription_narrows_uplinks():
    env = Environment()
    topo = LeafSpineTopology(env, leaves=2, spines=2, oversubscription=4.0)
    for leaf in topo.leaves:
        for _, port in leaf.egress_ports():
            if port.line_rate != CMAC_BANDWIDTH:
                assert port.line_rate == pytest.approx(CMAC_BANDWIDTH / 4.0)


# ------------------------------------------------- conservation (property)


@settings(max_examples=20, deadline=None)
@given(
    loads=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=25),   # packets per sender
            st.integers(min_value=0, max_value=2000),  # inter-packet gap ns
            st.integers(min_value=64, max_value=2048),  # payload bytes
        ),
        min_size=1, max_size=4,
    )
)
def test_egress_queueing_conserves_packets(loads):
    """No faults armed: whatever the offered load, PFC backpressure means
    every frame is delivered exactly once and per-flow order holds."""
    env = Environment()
    switch = Switch(env, config=SwitchConfig(
        egress_capacity_bytes=64 << 10,
        pfc_enabled=True, xoff_bytes=16 << 10, xon_bytes=8 << 10,
        storm_threshold_ns=1e12,
    ))
    dst_cmac = Cmac(env)
    switch.attach(MAC_B, dst_cmac)
    received = []
    dst_cmac.rx_taps.append(
        lambda now, pkt: received.append((pkt.eth.src.value, pkt.bth.psn))
    )
    sent = []
    for i, (count, gap, payload_bytes) in enumerate(loads):
        src = MacAddress(0x02_31_00 + i)
        cmac = Cmac(env, name=f"prop{i}")
        switch.attach(src, cmac)

        def blast(cmac=cmac, src=src, count=count, gap=gap,
                  payload_bytes=payload_bytes):
            for psn in range(count):
                yield from cmac.tx(packet(
                    src=src, psn=psn, payload=b"p" * payload_bytes
                ))
                if gap:
                    yield env.timeout(float(gap))

        for psn in range(count):
            sent.append((src.value, psn))
        env.process(blast())
    env.run()
    assert switch.tail_drops == 0
    assert switch.dropped == 0
    assert switch.duplicated == 0
    assert sorted(received) == sorted(sent)  # exactly once
    for i in range(len(loads)):
        src_value = 0x02_31_00 + i
        flow = [psn for src, psn in received if src == src_value]
        assert flow == sorted(flow)  # per-flow order preserved


# -------------------------------------------------------------- telemetry


def test_congestion_telemetry_in_card_report_and_cluster_snapshot():
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(dcqcn=DcqcnConfig(enabled=True)),
        ),
    )
    rdma_a = cluster[0].shell.dynamic.rdma
    rdma_b = cluster[1].shell.dynamic.rdma
    qp_a = rdma_a.create_qp(1, psn=0)
    qp_b = rdma_b.create_qp(2, psn=0)
    qp_a.connect(qp_b.local)
    qp_b.connect(qp_a.local)
    done = {}

    def sender():
        yield from rdma_a.send(1, b"hello congestion")
        done["sent"] = True

    def receiver():
        done["payload"] = yield from rdma_b.recv(2)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert done.get("sent") and done["payload"] == b"hello congestion"

    # Per-QP DCQCN reaction-point state rides in the card report.
    telemetry = card_report(cluster[0].driver)["telemetry"]
    qp_metrics = telemetry["net"]["qp"]["1"]
    assert qp_metrics["rate_gbps"]["value"] == pytest.approx(
        CMAC_BANDWIDTH * 8.0
    )
    assert qp_metrics["cnps"] == 0
    assert telemetry["net"]["rdma_cnps_sent"] == 0

    # Fabric congestion counters + per-port queue gauges in the cluster
    # roll-up.
    snap = ClusterTelemetry(cluster).snapshot()
    for name in (
        "net.switch_tail_drops", "net.switch_ecn_marks",
        "net.switch_ecn_suppressed", "net.switch_pause_frames_sent",
        "net.switch_pause_frames_received",
        "net.switch_pause_frames_dropped", "net.switch_pfc_storms",
    ):
        assert snap.counter(name).value == 0
    depth = snap.gauge("net.port.0.queue_bytes")
    assert depth.value == 0.0
    assert depth.high_water >= 0.0
