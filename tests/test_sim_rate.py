"""Tests for the virtual-time rate server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.rate import RateServer


def test_single_reservation_duration():
    env = Environment()
    server = RateServer(env, units_per_ns=2.0)

    def proc():
        yield from server.reserve(100)
        return env.now

    assert env.run(env.process(proc())) == pytest.approx(50.0)


def test_back_to_back_reservations_serialize():
    env = Environment()
    server = RateServer(env, units_per_ns=1.0)
    done = []

    def proc(tag, units):
        yield from server.reserve(units)
        done.append((tag, env.now))

    env.process(proc("a", 10))
    env.process(proc("b", 10))
    env.run()
    assert dict(done) == {"a": pytest.approx(10), "b": pytest.approx(20)}


def test_idle_time_is_not_charged():
    env = Environment()
    server = RateServer(env, units_per_ns=1.0)
    done = []

    def early():
        yield from server.reserve(10)
        done.append(env.now)

    def late():
        yield env.timeout(100)  # server idle 90 ns
        yield from server.reserve(10)
        done.append(env.now)

    env.process(early())
    env.process(late())
    env.run()
    assert done == [pytest.approx(10), pytest.approx(110)]


def test_total_units_accounting():
    env = Environment()
    server = RateServer(env, units_per_ns=4.0)

    def proc():
        yield from server.reserve(100)
        yield from server.reserve(50)

    env.run(env.process(proc()))
    assert server.total_units == 150


def test_zero_reservation_is_free():
    env = Environment()
    server = RateServer(env, units_per_ns=1.0)

    def proc():
        yield from server.reserve(0)
        return env.now

    assert env.run(env.process(proc())) == 0


def test_invalid_parameters():
    env = Environment()
    with pytest.raises(ValueError):
        RateServer(env, units_per_ns=0)
    server = RateServer(env, units_per_ns=1.0)

    def proc():
        yield from server.reserve(-1)

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


@settings(max_examples=30, deadline=None)
@given(units=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=20))
def test_aggregate_rate_never_exceeded(units):
    """N concurrent reservations finish no earlier than sum(units)/rate."""
    env = Environment()
    rate = 2.0
    server = RateServer(env, units_per_ns=rate)
    finish = []

    def proc(n):
        yield from server.reserve(n)
        finish.append(env.now)

    for n in units:
        env.process(proc(n))
    env.run()
    assert max(finish) == pytest.approx(sum(units) / rate)
