"""Unit and property tests for RoCE v2 header serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    AethHeader,
    BthHeader,
    EthernetHeader,
    Ipv4Header,
    MacAddress,
    RethHeader,
    RoceOpcode,
    UdpHeader,
)


def test_mac_from_string_and_repr():
    mac = MacAddress.from_string("aa:bb:cc:dd:ee:ff")
    assert mac.value == 0xAABBCCDDEEFF
    assert repr(mac) == "aa:bb:cc:dd:ee:ff"


def test_mac_validation():
    with pytest.raises(ValueError):
        MacAddress(1 << 48)
    with pytest.raises(ValueError):
        MacAddress.from_string("aa:bb")


def test_ethernet_roundtrip():
    hdr = EthernetHeader(
        dst=MacAddress(0x112233445566), src=MacAddress(0xAABBCCDDEEFF)
    )
    packed = hdr.pack()
    assert len(packed) == 14
    back = EthernetHeader.unpack(packed)
    assert back.dst == hdr.dst
    assert back.src == hdr.src
    assert back.ethertype == 0x0800


def test_ipv4_roundtrip_and_checksum():
    hdr = Ipv4Header(src=0x0A000001, dst=0x0A000002, total_length=100)
    packed = hdr.pack()
    assert len(packed) == 20
    back = Ipv4Header.unpack(packed)
    assert back.src == hdr.src
    assert back.dst == hdr.dst
    assert back.total_length == 100


@settings(max_examples=50)
@given(
    dscp=st.integers(min_value=0, max_value=0x3F),
    ecn=st.integers(min_value=0, max_value=3),
)
def test_ipv4_dscp_ecn_roundtrip(dscp, ecn):
    """Regression: parsing used to keep only DSCP from the TOS byte,
    silently zeroing ECN — which DCQCN's CE marks ride on."""
    hdr = Ipv4Header(
        src=0x0A000001, dst=0x0A000002, total_length=64, dscp=dscp, ecn=ecn
    )
    back = Ipv4Header.unpack(hdr.pack())
    assert back.ecn == ecn
    assert back.dscp == dscp


def test_ipv4_checksum_detects_corruption():
    packed = bytearray(Ipv4Header(src=1, dst=2, total_length=64).pack())
    packed[8] ^= 0xFF  # corrupt TTL
    with pytest.raises(ValueError, match="checksum"):
        Ipv4Header.unpack(bytes(packed))


def test_udp_roundtrip():
    hdr = UdpHeader(src_port=1000, dst_port=4791, length=52)
    back = UdpHeader.unpack(hdr.pack())
    assert (back.src_port, back.dst_port, back.length) == (1000, 4791, 52)


def test_bth_roundtrip_all_fields():
    hdr = BthHeader(
        opcode=RoceOpcode.RDMA_WRITE_ONLY,
        dest_qp=0x123456,
        psn=0xABCDEF,
        ack_request=True,
        solicited=True,
    )
    packed = hdr.pack()
    assert len(packed) == 12
    back = BthHeader.unpack(packed)
    assert back.opcode == RoceOpcode.RDMA_WRITE_ONLY
    assert back.dest_qp == 0x123456
    assert back.psn == 0xABCDEF
    assert back.ack_request
    assert back.solicited


def test_reth_roundtrip():
    hdr = RethHeader(vaddr=0xDEADBEEF0000, rkey=0x42, dma_length=1 << 20)
    packed = hdr.pack()
    assert len(packed) == 16
    back = RethHeader.unpack(packed)
    assert (back.vaddr, back.rkey, back.dma_length) == (0xDEADBEEF0000, 0x42, 1 << 20)


def test_aeth_ack_vs_nak():
    ack = AethHeader(syndrome=0, msn=7)
    nak = AethHeader(syndrome=AethHeader.NAK_PSN_SEQUENCE_ERROR, msn=7)
    assert not ack.is_nak
    assert nak.is_nak
    assert AethHeader.unpack(nak.pack()).syndrome == 0x60


def test_opcode_extension_header_predicates():
    assert RoceOpcode.has_reth(RoceOpcode.RDMA_WRITE_FIRST)
    assert RoceOpcode.has_reth(RoceOpcode.RDMA_READ_REQUEST)
    assert not RoceOpcode.has_reth(RoceOpcode.RDMA_WRITE_MIDDLE)
    assert RoceOpcode.has_aeth(RoceOpcode.ACKNOWLEDGE)
    assert RoceOpcode.has_aeth(RoceOpcode.RDMA_READ_RESPONSE_ONLY)
    assert not RoceOpcode.has_aeth(RoceOpcode.SEND_ONLY)


def test_opcode_names():
    assert RoceOpcode.name(RoceOpcode.ACKNOWLEDGE) == "ACKNOWLEDGE"
    assert "OPCODE" in RoceOpcode.name(0xFE)


@settings(max_examples=100, deadline=None)
@given(
    opcode=st.sampled_from(
        [RoceOpcode.SEND_ONLY, RoceOpcode.RDMA_WRITE_ONLY, RoceOpcode.ACKNOWLEDGE]
    ),
    dest_qp=st.integers(min_value=0, max_value=(1 << 24) - 1),
    psn=st.integers(min_value=0, max_value=(1 << 24) - 1),
    ack=st.booleans(),
)
def test_bth_roundtrip_property(opcode, dest_qp, psn, ack):
    hdr = BthHeader(opcode=opcode, dest_qp=dest_qp, psn=psn, ack_request=ack)
    back = BthHeader.unpack(hdr.pack())
    assert (back.opcode, back.dest_qp, back.psn, back.ack_request) == (
        opcode,
        dest_qp,
        psn,
        ack,
    )


@settings(max_examples=100, deadline=None)
@given(
    vaddr=st.integers(min_value=0, max_value=(1 << 64) - 1),
    rkey=st.integers(min_value=0, max_value=(1 << 32) - 1),
    length=st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_reth_roundtrip_property(vaddr, rkey, length):
    back = RethHeader.unpack(RethHeader(vaddr, rkey, length).pack())
    assert (back.vaddr, back.rkey, back.dma_length) == (vaddr, rkey, length)
