"""Tests for the synthesis model: netlists, flows, bitstream sizes."""

import pytest

from repro.core import DEVICES, Floorplan, ServiceConfig
from repro.core.reconfig import COYOTE_ICAP, IcapController
from repro.mem import MmuConfig, TlbConfig
from repro.mem.tlb import PAGE_1G, PAGE_2M
from repro.synth import (
    MODULE_LIBRARY,
    BuildFlow,
    NetlistError,
    ResourceVector,
    get_module,
    modules_for_services,
    total_resources,
    utilization_report,
)


# ---------------------------------------------------------------- resources

def test_resource_vector_add_and_scale():
    a = ResourceVector(luts=100, ffs=200, brams=2)
    b = ResourceVector(luts=50, dsps=8)
    total = a + b
    assert total.luts == 150
    assert total.dsps == 8
    assert total.scale(2).luts == 300


def test_fraction_of_device():
    device = DEVICES["u55c"]
    vec = ResourceVector(luts=device.luts // 10)
    assert vec.fraction_of(device)["luts"] == pytest.approx(0.1)


def test_utilization_report_mentions_all_kinds():
    report = utilization_report(ResourceVector(luts=1000), DEVICES["u55c"])
    for kind in ("luts", "ffs", "brams", "urams", "dsps"):
        assert kind in report


# ------------------------------------------------------------------ netlist

def test_library_covers_all_shell_services():
    for name in ("dyn_base", "mmu_2m", "mmu_1g", "hbm_ctrl", "rdma_stack", "cmac", "sniffer"):
        assert name in MODULE_LIBRARY


def test_unknown_module_raises():
    with pytest.raises(NetlistError):
        get_module("flux_capacitor")


def test_modules_for_services_tracks_config():
    base = modules_for_services(ServiceConfig(en_memory=False))
    with_mem = modules_for_services(ServiceConfig(en_memory=True))
    with_rdma = modules_for_services(ServiceConfig(en_memory=True, en_rdma=True))
    names = lambda mods: {m.name for m in mods}
    assert "hbm_ctrl" not in names(base)
    assert "hbm_ctrl" in names(with_mem)
    assert {"rdma_stack", "cmac"} <= names(with_rdma)


def test_mmu_variant_follows_page_size():
    cfg_1g = ServiceConfig(mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_1G)))
    assert "mmu_1g" in {m.name for m in modules_for_services(cfg_1g)}


# -------------------------------------------------------------------- flows

SCENARIOS = [
    # (services, apps) — the three configs of Figure 7(b) / Table 3.
    (ServiceConfig(en_memory=False, mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_1G))),
     ["passthrough"]),
    (ServiceConfig(en_memory=True), ["vadd", "vmul"]),
    (ServiceConfig(en_memory=True, en_rdma=True), ["aes_cbc"]),
]


def test_app_flow_savings_in_paper_band():
    """Figure 7(b): app flow reduces build time by 15-20%."""
    flow = BuildFlow("u55c")
    for services, apps in SCENARIOS:
        shell = flow.shell_flow(services, apps)
        app = flow.app_flow(shell.checkpoint, apps)
        savings = 1.0 - app.seconds / shell.seconds
        assert 0.13 <= savings <= 0.22, f"savings {savings:.2%} outside band"


def test_build_times_increase_with_complexity():
    flow = BuildFlow("u55c")
    times = [flow.shell_flow(svc, apps).seconds for svc, apps in SCENARIOS]
    assert times[0] < times[1] < times[2]


def test_table3_kernel_latencies_match_paper():
    """Bitstream sizes imply Table 3's kernel latencies within 10%."""
    flow = BuildFlow("u55c")
    paper_ms = [51.6, 72.3, 85.5]
    for (services, apps), expected in zip(SCENARIOS, paper_ms):
        bs = flow.shell_flow(services, apps).bitstream
        kernel_ms = COYOTE_ICAP.program_time_ns(bs.size_bytes) / 1e6
        assert kernel_ms == pytest.approx(expected, rel=0.10)


def test_table3_total_latencies_match_paper():
    flow = BuildFlow("u55c")
    paper_ms = [536.2, 709.0, 929.1]
    for (services, apps), expected in zip(SCENARIOS, paper_ms):
        bs = flow.shell_flow(services, apps).bitstream
        total_ms = (
            COYOTE_ICAP.program_time_ns(bs.size_bytes)
            + IcapController.host_overhead_ns(bs)
        ) / 1e6
        assert total_ms == pytest.approx(expected, rel=0.10)


def test_bitstream_sizes_are_tens_of_megabytes():
    """Paper: "bitstreams are not too large (tens of MBs)"."""
    flow = BuildFlow("u55c")
    for services, apps in SCENARIOS:
        size = flow.shell_flow(services, apps).bitstream.size_bytes
        assert 10e6 < size < 100e6


def test_app_bitstream_linked_to_checkpoint():
    flow = BuildFlow("u55c")
    shell = flow.shell_flow(ServiceConfig(), ["passthrough"])
    app = flow.app_flow(shell.checkpoint, ["hll"])
    assert app.bitstream.kind == "app"
    assert app.bitstream.linked_shell == shell.checkpoint.shell_id


def test_app_flow_rejects_foreign_checkpoint():
    flow_u55c = BuildFlow("u55c")
    flow_u250 = BuildFlow("u250")
    checkpoint = flow_u55c.shell_flow(ServiceConfig(), []).checkpoint
    with pytest.raises(ValueError, match="u55c"):
        flow_u250.app_flow(checkpoint, ["hll"])


def test_full_flow_includes_static_layer():
    flow = BuildFlow("u55c")
    services = ServiceConfig()
    full = flow.full_flow(services, ["passthrough"])
    shell = flow.shell_flow(services, ["passthrough"])
    assert full.resources.luts > shell.resources.luts
    assert full.bitstream.kind == "full"
    assert full.bitstream.size_bytes > shell.bitstream.size_bytes


def test_hll_shell_utilization_around_ten_percent():
    """Figure 11: base shell + HLL kernel uses ~10% of the device."""
    flow = BuildFlow("u55c")
    result = flow.shell_flow(ServiceConfig(en_memory=False), ["hll"])
    frac = result.resources.fraction_of(DEVICES["u55c"])["luts"]
    assert 0.07 < frac < 0.14


# ---------------------------------------------------------------- floorplan

def test_floorplan_partitions_device():
    plan = Floorplan(DEVICES["u55c"], app_regions=4)
    assert plan.static_region.luts + plan.shell_region.luts == pytest.approx(
        DEVICES["u55c"].luts, abs=2
    )
    assert plan.app_region(0).luts > 0
    with pytest.raises(IndexError):
        plan.app_region(4)


def test_floorplan_validation():
    with pytest.raises(ValueError):
        Floorplan(DEVICES["u55c"], static_fraction=0.0)
    with pytest.raises(ValueError):
        Floorplan(DEVICES["u55c"], app_regions=100, app_fraction_each=0.05)
