"""Tests for RoCE v2 atomic verbs (FETCH_ADD, CMP_SWAP)."""

import pytest

from repro.mem import SparseMemory
from repro.net import Cmac, MacAddress, RdmaConfig, RdmaStack, RoceOpcode, Switch
from repro.net.headers import AtomicAckEthHeader, AtomicEthHeader
from repro.net.packet import RocePacket
from repro.net.headers import BthHeader
from repro.sim import AllOf, Environment


def pair():
    env = Environment()
    switch = Switch(env)
    stacks, memories = [], []
    for i, (mac_val, ip) in enumerate([(0x02_00_0F01, 1), (0x02_00_0F02, 2)]):
        mac = MacAddress(mac_val)
        cmac = Cmac(env, name=f"n{i}")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, ip, name=f"n{i}")
        memory = SparseMemory(1 << 20)

        def read_local(vaddr, length, memory=memory):
            yield env.timeout(length / 12.0)
            return memory.read(vaddr, length)

        def write_local(vaddr, data, length, memory=memory):
            yield env.timeout(length / 12.0)
            if data is not None:
                memory.write(vaddr, data)

        stack.bind_memory(read_local, write_local)
        stacks.append(stack)
        memories.append(memory)
    qa = stacks[0].create_qp(1, psn=3)
    qb = stacks[1].create_qp(2, psn=8)
    qa.connect(qb.local)
    qb.connect(qa.local)
    return env, stacks, memories, switch


def test_atomic_eth_header_roundtrip():
    hdr = AtomicEthHeader(vaddr=0xDEAD0000, rkey=7, swap_add=42, compare=13)
    back = AtomicEthHeader.unpack(hdr.pack())
    assert (back.vaddr, back.rkey, back.swap_add, back.compare) == (0xDEAD0000, 7, 42, 13)
    assert len(hdr.pack()) == 28


def test_atomic_packet_wire_roundtrip():
    pkt = RocePacket.build(
        src_mac=MacAddress(1), dst_mac=MacAddress(2), src_ip=1, dst_ip=2,
        bth=BthHeader(opcode=RoceOpcode.FETCH_ADD, dest_qp=5, psn=9, ack_request=True),
        atomic_eth=AtomicEthHeader(vaddr=0x100, rkey=0, swap_add=1),
    )
    back = RocePacket.from_bytes(pkt.to_bytes())
    assert back.atomic_eth.swap_add == 1
    ack = RocePacket.build(
        src_mac=MacAddress(2), dst_mac=MacAddress(1), src_ip=2, dst_ip=1,
        bth=BthHeader(opcode=RoceOpcode.ATOMIC_ACKNOWLEDGE, dest_qp=4, psn=9),
        aeth=__import__("repro.net.headers", fromlist=["AethHeader"]).AethHeader(0, 1),
        atomic_ack=AtomicAckEthHeader(original=777),
    )
    assert RocePacket.from_bytes(ack.to_bytes()).atomic_ack.original == 777


def test_fetch_add_returns_original_and_updates():
    env, stacks, memories, _sw = pair()
    memories[1].write(0x100, (100).to_bytes(8, "little"))

    def proc():
        original = yield from stacks[0].fetch_add(1, 0x100, 5)
        return original

    assert env.run(env.process(proc())) == 100
    assert int.from_bytes(memories[1].read(0x100, 8), "little") == 105


def test_fetch_add_wraps_64_bits():
    env, stacks, memories, _sw = pair()
    memories[1].write(0, ((1 << 64) - 1).to_bytes(8, "little"))

    def proc():
        original = yield from stacks[0].fetch_add(1, 0, 2)
        return original

    assert env.run(env.process(proc())) == (1 << 64) - 1
    assert int.from_bytes(memories[1].read(0, 8), "little") == 1


def test_compare_swap_success_and_failure():
    env, stacks, memories, _sw = pair()
    memories[1].write(0x40, (7).to_bytes(8, "little"))

    def proc():
        # Matching compare: swap happens.
        first = yield from stacks[0].compare_swap(1, 0x40, compare=7, swap=99)
        # Non-matching compare: value unchanged.
        second = yield from stacks[0].compare_swap(1, 0x40, compare=7, swap=123)
        return first, second

    first, second = env.run(env.process(proc()))
    assert first == 7
    assert second == 99
    assert int.from_bytes(memories[1].read(0x40, 8), "little") == 99


def test_concurrent_fetch_adds_are_atomic():
    """Two requesters incrementing one counter must not lose updates."""
    env = Environment()
    switch = Switch(env)
    stacks, memories = [], []
    for i in range(3):  # node 2 holds the counter
        mac = MacAddress(0x02_00_1000 + i)
        cmac = Cmac(env, name=f"n{i}")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, 0x10 + i, name=f"n{i}")
        memory = SparseMemory(1 << 20)

        def read_local(vaddr, length, memory=memory):
            yield env.timeout(length / 12.0)
            return memory.read(vaddr, length)

        def write_local(vaddr, data, length, memory=memory):
            yield env.timeout(length / 12.0)
            if data is not None:
                memory.write(vaddr, data)

        stack.bind_memory(read_local, write_local)
        stacks.append(stack)
        memories.append(memory)
    # Nodes 0 and 1 each connect to node 2.
    for i in (0, 1):
        qa = stacks[i].create_qp(1, psn=i)
        qb = stacks[2].create_qp(10 + i, psn=20 + i)
        qa.connect(qb.local)
        qb.connect(qa.local)

    def incrementer(node, times):
        for _ in range(times):
            yield from stacks[node].fetch_add(1, 0x200, 1)

    procs = [env.process(incrementer(0, 20)), env.process(incrementer(1, 20))]
    env.run(AllOf(env, procs))
    assert int.from_bytes(memories[2].read(0x200, 8), "little") == 40


def test_atomic_completion_lands_in_cq():
    env, stacks, memories, _sw = pair()

    def proc():
        yield from stacks[0].fetch_add(1, 0, 1, wr_id=55)
        completion = yield stacks[0].cq.get()
        return completion

    completion = env.run(env.process(proc()))
    assert completion.wr_id == 55
    assert completion.opcode == "FETCH_ADD"
    assert completion.length == 8
