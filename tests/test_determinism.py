"""Determinism regressions: same ``(seed, plan)`` → identical run, twice.

Two properties pin the framework's contract:

1. *Reproducibility* — a seeded workload (multi-tenant AES ECB plus an
   RDMA WRITE between two nodes) produces an identical trace-record
   stream and identical end state across two fresh runs, both without
   and with an active fault plan.
2. *Zero-overhead when fault-free* — arming an injector whose plan never
   fires (or no injector at all) leaves the simulation bit-identical:
   same event interleaving, same finish times, same counters.
"""

from repro import CThread, Oper, RdmaSg, SgEntry, StreamType
from repro.apps import AesEcbApp
from repro.cluster import FpgaCluster
from repro.core import LocalSg, ServiceConfig
from repro.driver.report import card_report
from repro.faults import FaultInjector, FaultPlan
from repro.net import RdmaConfig
from repro.sim import AllOf, Environment
from repro.sim.tracing import Tracer

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


def run_workload(plan=None):
    """Multi-tenant ECB on node 0 + RDMA WRITE node 0 → node 1.

    Returns everything observable about the run: the fault trace stream,
    completion time, delivered bytes and the per-layer counters.
    """
    env = Environment()
    cluster = FpgaCluster(
        env, 2, num_vfpgas=2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    tracer = Tracer()
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, tracer=tracer).arm_cluster(cluster)
    node0 = cluster[0]
    rdma_a, rdma_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2, qpn_a=1, qpn_b=2)
    payload = bytes(i % 249 for i in range(40_000))
    outputs = {}

    def tenant(vid):
        ct = CThread(node0.driver, vid, pid=100 + vid)
        node0.shell.load_app(vid, AesEcbApp(num_streams=1))
        plain = bytes((vid + i) % 256 for i in range(8_192))
        src = yield from ct.get_mem(len(plain))
        dst = yield from ct.get_mem(len(plain))
        ct.write_buffer(src.vaddr, plain)
        yield from ct.set_csr(int.from_bytes(KEY[:8], "little"), 0)
        yield from ct.set_csr(int.from_bytes(KEY[8:], "little"), 1)
        sg = SgEntry(local=LocalSg(
            src_addr=src.vaddr, src_len=len(plain),
            dst_addr=dst.vaddr, dst_len=len(plain),
        ))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        outputs[f"ecb{vid}"] = ct.read_buffer(dst.vaddr, len(plain))

    def writer():
        src = yield from rdma_a.get_mem(len(payload))
        dst = yield from rdma_b.get_mem(len(payload))
        rdma_a.write_buffer(src.vaddr, payload)
        yield from rdma_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        outputs["rdma"] = rdma_b.read_buffer(dst.vaddr, len(payload))

    procs = [env.process(tenant(v)) for v in range(2)] + [env.process(writer())]
    env.run(AllOf(env, procs))
    switch = cluster.switch
    return {
        "finished_at": env.now,
        "trace": [(r.time, r.source, r.kind, r.payload) for r in tracer.records],
        "outputs": outputs,
        "switch": (switch.forwarded, switch.dropped, switch.corrupted,
                   switch.duplicated, switch.reordered),
        "rdma_stats": dict(node0.shell.dynamic.rdma.stats),
        "faults_report": card_report(node0.driver)["faults"],
        "injected": injector.summary() if injector is not None else None,
    }


CHAOS_PLAN = FaultPlan.build(
    seed=77, net_drop=0.04, net_duplicate=0.02, net_reorder=0.02, pcie_replay=0.03
)


def test_fault_free_run_is_reproducible():
    assert run_workload() == run_workload()


def test_chaos_run_is_reproducible():
    first = run_workload(CHAOS_PLAN)
    second = run_workload(CHAOS_PLAN)
    assert first == second
    # And the chaos actually happened — this is not vacuous.
    assert first["injected"]["net.drop"]["fires"] > 0
    assert first["trace"], "no fault trace records emitted"


def test_different_seed_changes_the_run():
    other = FaultPlan.build(
        seed=78, net_drop=0.04, net_duplicate=0.02, net_reorder=0.02, pcie_replay=0.03
    )
    assert run_workload(CHAOS_PLAN)["trace"] != run_workload(other)["trace"]


def test_chaos_soak_digest_stable_under_sanitizer(monkeypatch):
    """Chaos soak, instrumented: two runs with the SimSanitizer attached
    produce byte-identical digests over *everything observable* — so the
    sanitizer observes without perturbing, even while faults fire — and
    neither run trips an invariant.
    """
    import hashlib

    from repro.analysis import SimSanitizer
    from repro.analysis.sanitizer import activate, current, deactivate

    def digest(result):
        return hashlib.sha256(repr(sorted(result.items())).encode()).hexdigest()

    previous = current()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitizer = activate(SimSanitizer())
    try:
        digests = []
        fired = []
        for _ in range(2):
            sanitizer.reset()
            result = run_workload(CHAOS_PLAN)
            digests.append(digest(result))
            fired.append(result["injected"]["net.drop"]["fires"])
            assert sanitizer.violations == [], sanitizer.report()
        assert digests[0] == digests[1]
        # Not vacuous: the digest covers the fault trace, and faults fired.
        assert fired[0] > 0
    finally:
        if previous is not None:
            activate(previous)
        else:
            deactivate()


def test_sanitized_env_run_matches_unsanitized_run(monkeypatch):
    """REPRO_SANITIZE wiring end-to-end: the env-var path attaches the
    process-wide sanitizer to every Environment, and the sanitized chaos
    run equals the plain one field for field."""
    from repro.analysis.sanitizer import deactivate

    plain = run_workload(CHAOS_PLAN)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    deactivate()  # force a fresh process-wide instance via current()
    try:
        sanitized = run_workload(CHAOS_PLAN)
    finally:
        monkeypatch.delenv("REPRO_SANITIZE")
        deactivate()
    assert sanitized == plain


def test_armed_but_silent_plan_is_bit_identical_to_no_injector():
    """The acceptance bar: fault-free behavior is unchanged by the
    subsystem.  An armed injector with no firing rules must not shift a
    single timestamp relative to a run with no injector at all."""
    bare = run_workload()
    silent = run_workload(FaultPlan(seed=123, rules=()))
    assert silent["finished_at"] == bare["finished_at"]
    assert silent["outputs"] == bare["outputs"]
    assert silent["switch"] == bare["switch"]
    assert silent["rdma_stats"] == bare["rdma_stats"]
