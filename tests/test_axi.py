"""Unit tests for the AXI stream and lite models."""

import pytest

from repro.axi import STREAM_WIDTH_BYTES, AxiLite, AxiStream, Flit, RegisterFile
from repro.sim import FABRIC_CLOCK, Environment


def test_flit_rejects_length_mismatch():
    with pytest.raises(ValueError):
        Flit(length=10, data=b"abc")


def test_flit_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        Flit(length=0)


def test_flit_beats_rounds_up():
    assert Flit(length=64).beats() == 1
    assert Flit(length=65).beats() == 2
    assert Flit(length=4096).beats() == 64
    assert Flit(length=1).beats(width_bytes=64) == 1


def test_stream_send_recv_roundtrip():
    env = Environment()
    stream = AxiStream(env)
    got = []

    def producer():
        yield from stream.send(Flit(length=128, data=b"x" * 128, tid=3))

    def consumer():
        flit = yield from stream.recv()
        got.append(flit)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got[0].data == b"x" * 128
    assert got[0].tid == 3


def test_stream_timing_charges_beats():
    env = Environment()
    stream = AxiStream(env, depth_flits=1024)

    def producer():
        # 4096 bytes = 64 beats at 4 ns/beat = 256 ns
        yield from stream.send(Flit(length=4096))
        return env.now

    p = env.process(producer())
    finished = env.run(p)
    assert finished == pytest.approx(FABRIC_CLOCK.cycles_to_ns(4096 // STREAM_WIDTH_BYTES))


def test_stream_backpressure_blocks_producer():
    env = Environment()
    stream = AxiStream(env, depth_flits=2)
    progress = []

    def producer():
        for i in range(4):
            yield from stream.send(Flit(length=64))
            progress.append((i, env.now))

    def consumer():
        yield env.timeout(1000)
        for _ in range(4):
            yield from stream.recv()

    env.process(producer())
    env.process(consumer())
    env.run()
    # First two flits enter the FIFO early; the rest wait for the consumer.
    assert progress[0][1] < 1000
    assert progress[1][1] < 1000
    assert progress[2][1] >= 1000
    assert progress[3][1] >= 1000


def test_stream_send_bytes_chunks_and_reassembles():
    env = Environment()
    stream = AxiStream(env, depth_flits=1024)
    payload = bytes(range(256)) * 10
    result = []

    def producer():
        yield from stream.send_bytes(payload, tid=7, chunk=512)

    def consumer():
        msg = yield from stream.recv_message()
        result.append(msg)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert result[0].data == payload
    assert result[0].length == len(payload)
    assert result[0].tid == 7


def test_stream_counters():
    env = Environment()
    stream = AxiStream(env, depth_flits=8)

    def producer():
        yield from stream.send_bytes(b"a" * 300, chunk=100)

    env.process(producer())
    env.run()
    assert stream.bytes_sent == 300
    assert stream.flits_sent == 3


# -------------------------------------------------------------- AXI-Lite

def test_register_file_read_write():
    regs = RegisterFile(size=8)
    regs.write(3, 0xDEADBEEF)
    assert regs.read(3) == 0xDEADBEEF
    assert regs.read(0) == 0


def test_register_file_bounds():
    regs = RegisterFile(size=4)
    with pytest.raises(IndexError):
        regs.read(4)
    with pytest.raises(IndexError):
        regs.write(-1, 0)


def test_register_file_masks_to_64_bits():
    regs = RegisterFile()
    regs.write(0, 1 << 70)
    assert regs.read(0) == 0


def test_register_write_hook_fires():
    regs = RegisterFile()
    seen = []
    regs.on_write(2, seen.append)
    regs.write(2, 42)
    assert seen == [42]


def test_register_read_hook_overrides_value():
    regs = RegisterFile()
    regs.write(1, 5)
    regs.on_read(1, lambda: 99)
    assert regs.read(1) == 99


def test_axilite_timed_access():
    env = Environment()
    bus = AxiLite(env, read_latency_ns=900, write_latency_ns=120)

    def proc():
        yield from bus.write(0, 7)
        value = yield from bus.read(0)
        return (value, env.now)

    value, t = env.run(env.process(proc()))
    assert value == 7
    assert t == pytest.approx(1020)


def test_axilite_untimed_access():
    env = Environment()
    bus = AxiLite(env)
    bus.write_now(5, 123)
    assert bus.read_now(5) == 123
