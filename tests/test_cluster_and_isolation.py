"""Tests for the cluster helper, isolation enforcement and determinism."""

import pytest

from repro import (
    CThread,
    Descriptor,
    Driver,
    Environment,
    LocalSg,
    Oper,
    RdmaSg,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import PassThroughApp
from repro.cluster import FpgaCluster
from repro.driver import DriverError
from repro.sim import AllOf


# ------------------------------------------------------------------ cluster

def test_cluster_builds_n_nodes():
    env = Environment()
    cluster = FpgaCluster(env, 3)
    assert len(cluster) == 3
    macs = {node.mac for node in cluster.nodes}
    ips = {node.ip for node in cluster.nodes}
    assert len(macs) == 3 and len(ips) == 3


def test_cluster_validation():
    with pytest.raises(ValueError):
        FpgaCluster(Environment(), 0)


def test_cluster_rdma_end_to_end():
    env = Environment()
    cluster = FpgaCluster(env, 2)
    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2, qpn_a=1, qpn_b=2)
    payload = bytes(range(256)) * 64

    def main():
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        return thread_b.read_buffer(dst.vaddr, len(payload))

    assert env.run(env.process(main())) == payload


# ---------------------------------------------------------------- isolation

def test_descriptor_for_foreign_vfpga_rejected():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=2))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    shell.load_app(1, PassThroughApp())
    driver.open(1, 0)  # pid 1 owns vFPGA 0
    rogue = Descriptor(vfpga_id=1, pid=1, vaddr=0x1000, length=4096)
    with pytest.raises(DriverError, match="bound to vFPGA 0"):
        driver.post_descriptor(rogue, write=False)


def test_unregistered_pid_rejected():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    rogue = Descriptor(vfpga_id=0, pid=99, vaddr=0x1000, length=4096)
    with pytest.raises(DriverError, match="not registered"):
        driver.post_descriptor(rogue, write=False)


# -------------------------------------------------------------- determinism

def _timed_run(seed_payload: bytes) -> float:
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=2))
    driver = Driver(env, shell)
    for v in range(2):
        shell.load_app(v, PassThroughApp())

    def client(v):
        ct = CThread(driver, v, pid=10 + v)
        src = yield from ct.get_mem(len(seed_payload))
        dst = yield from ct.get_mem(len(seed_payload))
        ct.write_buffer(src.vaddr, seed_payload)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=len(seed_payload),
                                   dst_addr=dst.vaddr, dst_len=len(seed_payload)))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    procs = [env.process(client(v)) for v in range(2)]
    env.run(AllOf(env, procs))
    return env.now


def test_simulation_is_deterministic():
    """Identical workloads produce bit-identical simulated timings."""
    payload = bytes(range(256)) * 128
    assert _timed_run(payload) == _timed_run(payload)
