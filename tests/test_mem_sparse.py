"""Unit and property tests for the sparse memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import SparseMemory


def test_zero_fill_semantics():
    mem = SparseMemory(1 << 20)
    assert mem.read(0, 16) == b"\x00" * 16
    assert mem.read(12345, 7) == b"\x00" * 7


def test_write_read_roundtrip():
    mem = SparseMemory(1 << 20)
    mem.write(100, b"hello world")
    assert mem.read(100, 11) == b"hello world"
    # Neighbours untouched.
    assert mem.read(99, 1) == b"\x00"
    assert mem.read(111, 1) == b"\x00"


def test_cross_page_write():
    mem = SparseMemory(1 << 20)
    data = bytes(range(200)) * 50  # 10 KB spanning 3 backing pages
    mem.write(4090, data)
    assert mem.read(4090, len(data)) == data


def test_out_of_range_rejected():
    mem = SparseMemory(4096)
    with pytest.raises(ValueError):
        mem.read(4000, 200)
    with pytest.raises(ValueError):
        mem.write(-1, b"x")
    with pytest.raises(ValueError):
        SparseMemory(0)


def test_fill():
    mem = SparseMemory(1 << 16)
    mem.fill(10, 5, 0xAB)
    assert mem.read(10, 5) == b"\xab" * 5


def test_resident_bytes_grows_lazily():
    mem = SparseMemory(1 << 30)
    assert mem.resident_bytes == 0
    mem.write(0, b"x")
    assert mem.resident_bytes == 4096
    mem.write(1 << 20, b"y")
    assert mem.resident_bytes == 8192


@settings(max_examples=50, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=60_000),
            st.binary(min_size=1, max_size=5_000),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_matches_reference_bytearray(writes):
    """Sparse memory behaves exactly like one big bytearray."""
    size = 1 << 16
    mem = SparseMemory(size)
    reference = bytearray(size)
    for addr, data in writes:
        data = data[: size - addr]
        if not data:
            continue
        mem.write(addr, data)
        reference[addr : addr + len(data)] = data
    assert mem.read(0, size) == bytes(reference)
