"""Tests for the AES-128 cipher and its hardware kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    aes_cbc_decrypt,
    aes_cbc_encrypt,
    aes_decrypt_block,
    aes_ecb_encrypt,
    aes_encrypt_block,
    aes_expand_key,
)

# FIPS-197 Appendix C.1 vector.
FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# NIST SP 800-38A F.1.1 / F.2.1 vectors.
NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NIST_PLAIN = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
NIST_ECB_CIPHER = bytes.fromhex(
    "3ad77bb40d7a3660a89ecaf32466ef97"
    "f5d3d58503b9699de785895a96fdbaaf"
    "43b1cd7f598ece23881b00e3ed030688"
    "7b0c785e27e8ad3f8223207104725dd4"
)
NIST_CBC_CIPHER = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7"
)


def test_key_expansion_shape():
    round_keys = aes_expand_key(FIPS_KEY)
    assert len(round_keys) == 11
    assert all(len(rk) == 16 for rk in round_keys)
    assert round_keys[0] == FIPS_KEY


def test_key_expansion_rejects_bad_length():
    with pytest.raises(ValueError):
        aes_expand_key(b"short")


def test_fips197_block_vector():
    round_keys = aes_expand_key(FIPS_KEY)
    assert aes_encrypt_block(FIPS_PLAIN, round_keys) == FIPS_CIPHER


def test_fips197_decrypt_vector():
    round_keys = aes_expand_key(FIPS_KEY)
    assert aes_decrypt_block(FIPS_CIPHER, round_keys) == FIPS_PLAIN


def test_nist_ecb_vector():
    assert aes_ecb_encrypt(NIST_PLAIN, NIST_KEY) == NIST_ECB_CIPHER


def test_nist_cbc_vector():
    assert aes_cbc_encrypt(NIST_PLAIN, NIST_KEY, NIST_IV) == NIST_CBC_CIPHER


def test_cbc_decrypt_inverts():
    assert aes_cbc_decrypt(NIST_CBC_CIPHER, NIST_KEY, NIST_IV) == NIST_PLAIN


def test_block_size_validation():
    round_keys = aes_expand_key(FIPS_KEY)
    with pytest.raises(ValueError):
        aes_encrypt_block(b"tiny", round_keys)
    with pytest.raises(ValueError):
        aes_ecb_encrypt(b"not a multiple of sixteen!", FIPS_KEY)
    with pytest.raises(ValueError):
        aes_cbc_encrypt(bytes(16), FIPS_KEY, b"shortiv")


def test_cbc_chains_blocks():
    """Identical plaintext blocks must yield different ciphertext in CBC."""
    plain = bytes(16) * 4
    cipher = aes_cbc_encrypt(plain, NIST_KEY, NIST_IV)
    blocks = {cipher[i : i + 16] for i in range(0, 64, 16)}
    assert len(blocks) == 4
    # ...but identical blocks in ECB mode are identical (the ECB weakness).
    ecb = aes_ecb_encrypt(plain, NIST_KEY)
    assert len({ecb[i : i + 16] for i in range(0, 64, 16)}) == 1


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=16, max_size=16), block=st.binary(min_size=16, max_size=16))
def test_encrypt_decrypt_roundtrip_property(key, block):
    round_keys = aes_expand_key(key)
    assert aes_decrypt_block(aes_encrypt_block(block, round_keys), round_keys) == block


@settings(max_examples=15, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    iv=st.binary(min_size=16, max_size=16),
    nblocks=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_cbc_roundtrip_property(key, iv, nblocks, data):
    plain = data.draw(st.binary(min_size=16 * nblocks, max_size=16 * nblocks))
    assert aes_cbc_decrypt(aes_cbc_encrypt(plain, key, iv), key, iv) == plain


def test_cached_round_keys_identical_ciphertext():
    """The pre-expanded key schedule (cached per setCSR by the AES apps'
    hot path) must produce byte-identical output to per-call expansion."""
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    iv = bytes(range(16))
    data = bytes((7 * i) % 256 for i in range(64 * 16))
    schedule = aes_expand_key(key)
    assert aes_ecb_encrypt(data, key) == aes_ecb_encrypt(
        data, key, round_keys=schedule
    )
    assert aes_cbc_encrypt(data, key, iv) == aes_cbc_encrypt(
        data, key, iv, round_keys=schedule
    )
    assert aes_cbc_decrypt(data, key, iv) == aes_cbc_decrypt(
        data, key, iv, round_keys=schedule
    )


def test_app_reuses_cached_schedule():
    """_AesAppBase expands once per key write, not once per message."""
    from repro.apps.aes import AesEcbApp

    app = AesEcbApp()
    first = app._keys()
    assert app._keys() is first  # cached across invocations
    app.on_csr_write(0, 0x0123456789ABCDEF)
    assert app._keys() is not first  # key change re-expands
