"""Tests for the on-demand application scheduler."""

import pytest

from repro import Driver, Environment, ServiceConfig, Shell, ShellConfig
from repro.api import AppScheduler, SchedulerError
from repro.apps import AesEcbApp, HllApp, PassThroughApp
from repro.sim import AllOf
from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services


def make_scheduler(affinity_window=8):
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False)))
    driver = Driver(env, shell)
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        "u55c", shell.config.services, shell.shell_id,
        sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    scheduler = AppScheduler(driver, affinity_window=affinity_window)
    scheduler.register("hll", flow.app_flow(checkpoint, ["hll"]).bitstream, HllApp)
    scheduler.register(
        "aes", flow.app_flow(checkpoint, ["aes_ecb"]).bitstream, AesEcbApp
    )
    return env, shell, driver, scheduler


def simple_body(env, tag, log, duration=1000.0):
    def body(app):
        log.append((tag, type(app).__name__))
        yield env.timeout(duration)
        return tag

    return body


def test_register_duplicate_rejected():
    env, shell, driver, scheduler = make_scheduler()
    with pytest.raises(SchedulerError):
        scheduler.register("hll", object(), HllApp)


def test_submit_unknown_kernel_rejected():
    env, shell, driver, scheduler = make_scheduler()

    def main():
        yield from scheduler.submit("nope", lambda app: iter(()))

    env.process(main())
    with pytest.raises(SchedulerError):
        env.run()


def test_first_request_loads_kernel():
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def main():
        result = yield from scheduler.submit("hll", simple_body(env, "r1", log))
        return result

    result = env.run(env.process(main()))
    assert result == "r1"
    assert scheduler.loaded == "hll"
    assert scheduler.reconfigurations == 1
    assert log == [("r1", "HllApp")]
    assert isinstance(shell.vfpgas[0].app, HllApp)


def test_same_kernel_requests_share_one_load():
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def client(i):
        yield from scheduler.submit("hll", simple_body(env, f"r{i}", log))

    procs = [env.process(client(i)) for i in range(5)]
    env.run(AllOf(env, procs))
    assert scheduler.reconfigurations == 1
    assert scheduler.requests_served == 5


def test_kernel_switch_reconfigures():
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def main():
        yield from scheduler.submit("hll", simple_body(env, "a", log))
        yield from scheduler.submit("aes", simple_body(env, "b", log))
        yield from scheduler.submit("hll", simple_body(env, "c", log))

    env.run(env.process(main()))
    assert scheduler.reconfigurations == 3
    assert [entry[1] for entry in log] == ["HllApp", "AesEcbApp", "HllApp"]


def test_affinity_batches_same_kernel_ahead_of_switch():
    """hll, aes, hll submitted together: both hll run before the swap."""
    env, shell, driver, scheduler = make_scheduler(affinity_window=8)
    log = []

    def client(kernel, tag):
        yield from scheduler.submit(kernel, simple_body(env, tag, log))

    procs = [
        env.process(client("hll", "h1")),
        env.process(client("aes", "a1")),
        env.process(client("hll", "h2")),
    ]
    env.run(AllOf(env, procs))
    assert [entry[0] for entry in log] == ["h1", "h2", "a1"]
    assert scheduler.reconfigurations == 2  # hll once, aes once


def test_no_affinity_is_strict_fcfs():
    env, shell, driver, scheduler = make_scheduler(affinity_window=0)
    log = []

    def client(kernel, tag):
        yield from scheduler.submit(kernel, simple_body(env, tag, log))

    procs = [
        env.process(client("hll", "h1")),
        env.process(client("aes", "a1")),
        env.process(client("hll", "h2")),
    ]
    env.run(AllOf(env, procs))
    assert [entry[0] for entry in log] == ["h1", "a1", "h2"]
    assert scheduler.reconfigurations == 3


def test_failing_body_propagates_to_submitter():
    env, shell, driver, scheduler = make_scheduler()

    def bad_body(app):
        yield env.timeout(1)
        raise RuntimeError("kernel blew up")

    def main():
        try:
            yield from scheduler.submit("hll", bad_body)
        except RuntimeError as exc:
            return str(exc)

    assert env.run(env.process(main())) == "kernel blew up"
    # The scheduler keeps serving afterwards.
    log = []

    def follow_up():
        yield from scheduler.submit("hll", simple_body(env, "ok", log))

    env.run(env.process(follow_up()))
    assert log
