"""Shared pytest configuration: hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci``: derandomized so every run of a
given commit explores the same examples, with ``print_blob`` enabled so a
failing example prints the ``@reproduce_failure`` blob needed to replay
it locally.  The default ``dev`` profile keeps hypothesis's normal
randomized exploration (deadlines disabled — simulated workloads have
highly variable wall-clock cost per example).
"""

import os

from hypothesis import settings

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
