"""Shared pytest configuration: hypothesis profiles + SimSanitizer.

CI runs with ``HYPOTHESIS_PROFILE=ci``: derandomized so every run of a
given commit explores the same examples, with ``print_blob`` enabled so a
failing example prints the ``@reproduce_failure`` blob needed to replay
it locally.  The default ``dev`` profile keeps hypothesis's normal
randomized exploration (deadlines disabled — simulated workloads have
highly variable wall-clock cost per example).

With ``REPRO_SANITIZE=1`` every test additionally runs under the
process-wide :class:`repro.analysis.SimSanitizer` (each ``Environment``
attaches it automatically) and *fails* if the run accumulated invariant
violations — monotonicity, credit conservation, telemetry type
stability.  CI runs the tier-1 suite once in this mode.
"""

import os

import pytest
from hypothesis import settings

from repro.analysis import sanitizer as _sanitizer_mod

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True, print_blob=True)
# The engine-conformance CI job explores far more examples than the
# default suite run: the DES core is the layer every other result sits
# on, so its property tests get a deeper (still derandomized) budget.
settings.register_profile(
    "long", deadline=None, derandomize=True, print_blob=True, max_examples=500
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def _simsanitizer_gate():
    """Fail any test that tripped the sanitizer (REPRO_SANITIZE=1 only).

    State is reset around every test: violations are per-test, and the
    cross-registry metric-kind map must not couple unrelated tests (two
    tests may legitimately reuse a metric name for different kinds).
    """
    if not _sanitizer_mod.enabled():
        yield
        return
    active = _sanitizer_mod.current()
    active.reset()
    yield
    if active.violations:
        report = active.report()
        active.reset()
        pytest.fail(f"SimSanitizer detected invariant violations:\n{report}")
