"""Tests for the repro.analysis static analyzer.

Every rule gets a fires / must-not-fire fixture pair, written into a
``tmp_path`` tree (DET001 scoping keys off a ``src`` path component, so
fixtures that must be "sim-reachable" live under ``tmp/src/``).  The
final test runs the analyzer over the real tree — the burn-down
acceptance gate: zero findings, forever.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import run_paths
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.fault_table import (
    BEGIN_MARK,
    END_MARK,
    check_fault_table,
    render_fault_table,
    write_fault_table,
)
from repro.analysis.rules_registry import load_fault_registry
from repro.analysis.waivers import parse_waivers

REPO = Path(__file__).resolve().parents[1]
PLAN = REPO / "src" / "repro" / "faults" / "plan.py"

#: Marks a fixture module as event-scheduling for DET002/SIM001 scope.
SIM_IMPORT = "from repro.sim import Environment\n"


def analyze(tmp_path, source, filename="src/mod.py", sim=False):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    text = textwrap.dedent(source)
    if sim:
        text = SIM_IMPORT + text
    path.write_text(text)
    # Nonexistent design doc: fixture runs must not drift-check the real
    # DESIGN.md (that has its own test below).
    return run_paths(
        [tmp_path],
        design_doc=tmp_path / "NO_DESIGN.md",
        fault_registry=PLAN,
    )


def codes(result):
    return [f.code for f in result.findings]


# ------------------------------------------------------------------- DET001


def test_det001_fires_on_wall_clock_in_sim_scope(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    assert codes(result) == ["DET001"]
    assert "time.time" in result.findings[0].message


def test_det001_sees_through_import_aliases(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time as clk
        from random import randint

        def draw():
            return clk.monotonic() + randint(1, 6)
        """,
    )
    assert codes(result) == ["DET001", "DET001"]


def test_det001_ignores_seeded_substreams(tmp_path):
    result = analyze(
        tmp_path,
        """
        import random

        def draw(seed):
            return random.Random(seed).random()
        """,
    )
    assert result.ok


def test_det001_out_of_scope_outside_src(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
        filename="benchmarks/mod.py",
    )
    assert result.ok


# ------------------------------------------------------------------- DET002


def test_det002_fires_on_set_iteration_in_scheduling_module(tmp_path):
    result = analyze(
        tmp_path,
        """
        def drain(pending):
            ready = {1, 2, 3}
            for item in ready:
                pending.append(item)
        """,
        sim=True,
    )
    assert "DET002" in codes(result)


def test_det002_accepts_sorted_sets_and_nonscheduling_modules(tmp_path):
    sorted_ok = analyze(
        tmp_path,
        """
        def drain(pending):
            for item in sorted({1, 2, 3}):
                pending.append(item)
        """,
        sim=True,
    )
    assert sorted_ok.ok
    no_sim = analyze(
        tmp_path,
        """
        def drain(pending):
            for item in {1, 2, 3}:
                pending.append(item)
        """,
        filename="src/other.py",
    )
    assert no_sim.ok


def test_det002_tracks_set_typed_locals_through_unions(tmp_path):
    result = analyze(
        tmp_path,
        """
        def fanout(a, b):
            targets = set(a) | set(b)
            return [t for t in targets]
        """,
        sim=True,
    )
    assert "DET002" in codes(result)


# ------------------------------------------------------------------- SIM001


def test_sim001_fires_on_blocking_call_in_generator(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def worker(env):
            time.sleep(0.1)
            yield env.timeout(5)
        """,
        sim=True,
    )
    assert "SIM001" in codes(result)
    assert "worker" in next(f for f in result.findings if f.code == "SIM001").message


def test_sim001_ignores_plain_functions(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def host_side_tool():
            time.sleep(0.1)
        """,
        # Scheduling module, but not a generator: host tooling may block.
        filename="benchmarks/tool.py",
        sim=True,
    )
    assert result.ok


# ------------------------------------------------------------------- RES001


def test_res001_fires_without_release(tmp_path):
    result = analyze(
        tmp_path,
        """
        def mover(crediter):
            yield from crediter.acquire()
        """,
        filename="benchmarks/mover.py",
    )
    assert codes(result) == ["RES001"]
    assert "no release()" in result.findings[0].message


def test_res001_fires_when_release_not_exception_safe(tmp_path):
    result = analyze(
        tmp_path,
        """
        def mover(crediter, packet):
            yield from crediter.acquire()
            packet.send()
            crediter.release()
        """,
        filename="benchmarks/mover.py",
    )
    assert codes(result) == ["RES001"]
    assert "exception paths" in result.findings[0].message


def test_res001_accepts_try_finally_pairing(tmp_path):
    result = analyze(
        tmp_path,
        """
        def mover(crediter, packet):
            yield from crediter.acquire()
            try:
                packet.send()
            finally:
                crediter.release()
        """,
        filename="benchmarks/mover.py",
    )
    assert result.ok


def test_res001_ignores_non_credit_receivers(tmp_path):
    result = analyze(
        tmp_path,
        """
        def host_tool(lock):
            lock.acquire()
        """,
        filename="benchmarks/tool.py",
    )
    assert result.ok


# ------------------------------------------------------------------- FLT001


def test_flt001_fires_on_unknown_sites_with_suggestion(tmp_path):
    result = analyze(
        tmp_path,
        """
        from repro.faults import FaultPlan, FaultRule

        def build(injector):
            injector.fires("net.dorp")
            FaultRule(site="gpu.meltdown")
            return FaultPlan.build(seed=1, net_dropp=0.5)
        """,
        filename="benchmarks/chaos.py",
    )
    assert codes(result) == ["FLT001", "FLT001", "FLT001"]
    assert "did you mean 'net.drop'" in result.findings[0].message


def test_flt001_accepts_registered_sites(tmp_path):
    result = analyze(
        tmp_path,
        """
        from repro.faults import FaultPlan, FaultRule

        def build(injector):
            injector.fires("net.drop")
            FaultRule(site="icap.crc")
            return FaultPlan.build(seed=1, net_drop=0.5, hbm_ecc_single=0.1)
        """,
        filename="benchmarks/chaos.py",
    )
    assert result.ok


def test_registry_loads_all_sites_from_plan():
    from repro.faults import FAULT_SITES

    docs = load_fault_registry(PLAN)
    assert set(docs) == set(FAULT_SITES)
    # The AST extraction carries the doc tuple, not just the key.
    assert docs["net.drop"][0] == "net.switch.Switch"


# ------------------------------------------------------------------- TEL001


def test_tel001_fires_on_flat_metric_names(tmp_path):
    result = analyze(
        tmp_path,
        """
        def record(registry):
            registry.counter("replays").inc()
            registry.gauge("pcie.in_flight").set(3)
        """,
        filename="benchmarks/metrics.py",
    )
    assert codes(result) == ["TEL001"]
    assert "'replays'" in result.findings[0].message


# ------------------------------------------------------------------- waivers


def test_waiver_on_same_line_suppresses(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # repro: allow[DET001] fixture says so
        """,
    )
    assert result.ok
    assert result.waivers_honoured == 1


def test_waiver_on_line_above_suppresses(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def stamp():
            # repro: allow[DET001] fixture says so
            return time.time()
        """,
    )
    assert result.ok


def test_file_scope_waiver_covers_every_line(tmp_path):
    result = analyze(
        tmp_path,
        """
        # repro: allow-file[DET001] this whole fixture is wall-clock tooling
        import time

        def stamp():
            return time.time() + time.monotonic()
        """,
    )
    assert result.ok
    assert result.waivers_honoured == 2


def test_waiver_without_justification_is_wai001(tmp_path):
    result = analyze(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # repro: allow[DET001]
        """,
    )
    assert codes(result) == ["WAI001"]


def test_unused_waiver_is_wai002(tmp_path):
    result = analyze(
        tmp_path,
        """
        def stamp():
            return 42  # repro: allow[DET001] nothing to suppress here
        """,
    )
    assert codes(result) == ["WAI002"]


def test_waiver_examples_in_docstrings_are_not_waivers():
    source = [
        '"""Docs showing the syntax: # repro: allow[DET001] like this."""',
        "x = 1",
    ]
    assert parse_waivers("doc.py", source) == []


def test_waiver_with_unknown_rule_is_flagged(tmp_path):
    result = analyze(
        tmp_path,
        """
        def stamp():
            return 42  # repro: allow[ZZZ999] no such rule
        """,
    )
    assert codes(result) == ["WAI002"]
    assert "unknown rule" in result.findings[0].message


# ----------------------------------------------------------------- CLI / doc


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("x = 1\n")
    assert analysis_main([str(clean)]) == 0

    dirty = tmp_path / "src"
    dirty.mkdir()
    (dirty / "bad.py").write_text("import time\nt = time.time()\n")
    assert analysis_main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "fix:" in out


def test_cli_explain(capsys):
    assert analysis_main(["--explain", "RES001"]) == 0
    out = capsys.readouterr().out
    assert "RES001" in out and "waive" in out
    assert analysis_main(["--explain", "NOPE99"]) == 1


def test_fault_table_roundtrip_and_drift(tmp_path):
    docs = load_fault_registry(PLAN)
    doc = tmp_path / "DESIGN.md"
    doc.write_text(f"# doc\n\n{BEGIN_MARK}\n{END_MARK}\n")
    assert write_fault_table(doc, docs)
    assert check_fault_table(doc, docs) == []
    assert render_fault_table(docs) in doc.read_text()

    # Tamper -> DOC001; missing markers -> DOC001.
    doc.write_text(doc.read_text().replace("net.drop", "net.dorp"))
    drifted = check_fault_table(doc, docs)
    assert [f.code for f in drifted] == ["DOC001"]
    doc.write_text("# no markers\n")
    assert [f.code for f in check_fault_table(doc, docs)] == ["DOC001"]


def test_unparsable_file_is_an_error_not_a_crash(tmp_path):
    (tmp_path / "broken.py").write_text("def nope(:\n")
    result = run_paths([tmp_path], design_doc=tmp_path / "NO_DESIGN.md")
    assert not result.ok
    assert result.errors and "broken.py" in result.errors[0]


# --------------------------------------------------------------- acceptance


def test_real_tree_is_clean():
    """The burn-down gate: the repo's own sources carry zero findings."""
    result = run_paths(
        [REPO / "src", REPO / "tests", REPO / "benchmarks"],
        design_doc=REPO / "DESIGN.md",
        fault_registry=PLAN,
    )
    assert result.ok, result.render()


def test_analyzer_runtime_budget():
    """The whole-repo run — per-module rules plus the interprocedural
    index — must stay fast enough to sit in every pre-commit loop.  The
    bound is ~10x the wall clock measured at introduction (about 5s for
    190 files), so it only trips on an accidental complexity blow-up
    (e.g. the DLK001 cycle search going super-linear), not on CI noise.
    """
    import time

    start = time.perf_counter()
    result = run_paths(
        [REPO / "src", REPO / "tests", REPO / "benchmarks"],
        design_doc=REPO / "DESIGN.md",
        fault_registry=PLAN,
    )
    elapsed = time.perf_counter() - start
    assert result.files_checked > 100  # the budget covers the real tree
    assert elapsed < 60.0, f"analyzer took {elapsed:.1f}s on {result.files_checked} files"
