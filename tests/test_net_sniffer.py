"""Tests for the traffic sniffer service and PCAP output."""

import pytest

from repro.mem import HbmConfig, HbmController
from repro.net import (
    BthHeader,
    Cmac,
    MacAddress,
    RocePacket,
    RoceOpcode,
    Switch,
    TrafficSniffer,
    parse_capture_buffer,
    read_pcap,
)
from repro.net.pcap import PcapWriter
from repro.net.sniffer import HEADERS_ONLY_BYTES
from repro.sim import Environment

MAC_A = MacAddress(0x020000000011)
MAC_B = MacAddress(0x020000000022)


def make_packet(qp=5, psn=0, payload=b"data!"):
    return RocePacket.build(
        src_mac=MAC_A,
        dst_mac=MAC_B,
        src_ip=0x0A000001,
        dst_ip=0x0A000002,
        bth=BthHeader(opcode=RoceOpcode.SEND_ONLY, dest_qp=qp, psn=psn),
        payload=payload,
    )


def sniffer_rig(buffer_len=1 << 20):
    env = Environment()
    switch = Switch(env)
    cmac_a = Cmac(env, "a")
    cmac_b = Cmac(env, "b")
    switch.attach(MAC_A, cmac_a)
    switch.attach(MAC_B, cmac_b)
    hbm = HbmController(env, HbmConfig(num_channels=4, channel_bytes=1 << 22))
    sniffer = TrafficSniffer(env, cmac_a, hbm, buffer_addr=0, buffer_len=buffer_len)
    return env, cmac_a, cmac_b, sniffer


def run_traffic(env, cmac, packets):
    def tx_all():
        for pkt in packets:
            yield from cmac.tx(pkt)

    proc = env.process(tx_all())
    env.run(proc)
    env.run()  # let the HBM writer drain


def test_capture_disabled_by_default():
    env, cmac_a, _b, sniffer = sniffer_rig()
    run_traffic(env, cmac_a, [make_packet()])
    assert sniffer.captured == 0


def test_tx_capture_roundtrip():
    env, cmac_a, _b, sniffer = sniffer_rig()
    sniffer.start()
    packets = [make_packet(psn=i, payload=bytes([i]) * 10) for i in range(3)]
    run_traffic(env, cmac_a, packets)
    sniffer.stop()
    records = parse_capture_buffer(sniffer.sync_to_host())
    assert len(records) == 3
    for i, (timestamp, frame) in enumerate(records):
        decoded = RocePacket.from_bytes(frame)
        assert decoded.bth.psn == i
        assert decoded.payload == bytes([i]) * 10
        assert timestamp > 0


def test_rx_direction_capture():
    env, cmac_a, cmac_b, sniffer = sniffer_rig()
    sniffer.start()
    sniffer.set_filter(rx=True, tx=False)
    # Traffic from B to A arrives on A's RX.
    pkt = RocePacket.build(
        src_mac=MAC_B,
        dst_mac=MAC_A,
        src_ip=0x0A000002,
        dst_ip=0x0A000001,
        bth=BthHeader(opcode=RoceOpcode.SEND_ONLY, dest_qp=1, psn=9),
        payload=b"inbound",
    )
    run_traffic(env, cmac_b, [pkt])
    records = parse_capture_buffer(sniffer.sync_to_host())
    assert len(records) == 1
    assert RocePacket.from_bytes(records[0][1]).payload == b"inbound"


def test_tx_filter_excludes_rx():
    env, cmac_a, cmac_b, sniffer = sniffer_rig()
    sniffer.start()
    sniffer.set_filter(rx=False, tx=True)
    inbound = RocePacket.build(
        src_mac=MAC_B,
        dst_mac=MAC_A,
        src_ip=2,
        dst_ip=1,
        bth=BthHeader(opcode=RoceOpcode.SEND_ONLY, dest_qp=1, psn=0),
        payload=b"x",
    )
    run_traffic(env, cmac_b, [inbound])
    assert sniffer.captured == 0


def test_qp_filter():
    env, cmac_a, _b, sniffer = sniffer_rig()
    sniffer.start()
    sniffer.set_filter(qp=7)
    run_traffic(env, cmac_a, [make_packet(qp=7), make_packet(qp=8), make_packet(qp=7)])
    assert sniffer.captured == 2


def test_headers_only_mode():
    env, cmac_a, _b, sniffer = sniffer_rig()
    sniffer.start()
    sniffer.set_filter(headers_only=True)
    run_traffic(env, cmac_a, [make_packet(payload=b"z" * 1000)])
    records = parse_capture_buffer(sniffer.sync_to_host())
    assert len(records) == 1
    assert len(records[0][1]) == HEADERS_ONLY_BYTES


def test_buffer_exhaustion_drops():
    env, cmac_a, _b, sniffer = sniffer_rig(buffer_len=256)  # fits ~2 records
    sniffer.start()
    run_traffic(env, cmac_a, [make_packet(psn=i) for i in range(10)])
    assert sniffer.captured + sniffer.dropped == 10
    assert sniffer.dropped > 0


def test_control_registers_report_counts():
    env, cmac_a, _b, sniffer = sniffer_rig()
    sniffer.start()
    run_traffic(env, cmac_a, [make_packet()])
    assert sniffer.regs.read(4) == 1  # REG_CAPTURED
    assert sniffer.regs.read(5) == 0  # REG_DROPPED


def test_to_pcap_is_standard_format():
    env, cmac_a, _b, sniffer = sniffer_rig()
    sniffer.start()
    run_traffic(env, cmac_a, [make_packet(psn=3, payload=b"wireshark")])
    pcap_bytes = sniffer.to_pcap()
    header, records = read_pcap(pcap_bytes)
    assert header["version"] == (2, 4)
    assert header["linktype"] == 1  # Ethernet
    assert len(records) == 1
    assert RocePacket.from_bytes(records[0].data).payload == b"wireshark"


def test_pcap_writer_roundtrip_multiple_records():
    writer = PcapWriter()
    frames = [bytes([i]) * (i + 1) for i in range(5)]
    for i, frame in enumerate(frames):
        writer.add(i * 1_000_000.0, frame)
    header, records = read_pcap(writer.to_bytes())
    assert [r.data for r in records] == frames
    # Microsecond timestamp resolution preserved.
    assert records[1].timestamp_ns == 1_000_000.0


def test_pcap_reader_rejects_garbage():
    with pytest.raises(ValueError):
        read_pcap(b"not a pcap")


def test_dropped_register_readback_under_exhaustion():
    """REG_DROPPED must report the live drop count over the control BAR,
    and captured + dropped must account for every offered frame."""
    env, cmac_a, _b, sniffer = sniffer_rig(buffer_len=256)  # fits ~2 records
    sniffer.start()
    run_traffic(env, cmac_a, [make_packet(psn=i) for i in range(10)])
    assert sniffer.dropped > 0
    assert sniffer.regs.read(5) == sniffer.dropped  # REG_DROPPED
    assert sniffer.regs.read(4) == sniffer.captured  # REG_CAPTURED
    assert sniffer.captured + sniffer.dropped == 10
    # The records that did land are intact despite the exhaustion.
    records = parse_capture_buffer(sniffer.sync_to_host())
    assert len(records) == sniffer.captured
