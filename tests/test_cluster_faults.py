"""Cluster fault tolerance: the three cluster fault sites, the heartbeat
failure detector, self-healing collectives and node-down admission.

The acceptance scenario from the issue is pinned here end-to-end: a
seeded ``node.crash`` in the middle of a 4-node allreduce aborts the
collective *symmetrically* (every rank raises, nobody stays parked, the
simulation drains), ``rebuild()`` reforms the mesh over the 3 survivors,
the retried allreduce produces the correct sum — and the whole failover
is byte-identical across two runs under ``REPRO_SANITIZE=1``.
"""

import hashlib

import pytest

from repro.cluster import FpgaCluster
from repro.core import ServiceConfig
from repro.core.interfaces import Descriptor
from repro.faults import (
    LINK_FLAP,
    NET_PARTITION,
    NODE_CRASH,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.health import (
    ClusterHealthConfig,
    ClusterMonitor,
    NodeDownError,
    health_section,
)
from repro.net import (
    CollectiveAbortError,
    QpState,
    RdmaConfig,
    WrFlushError,
)
from repro.sim import AllOf, Environment
from repro.telemetry import ClusterTelemetry


def make_cluster(n=2, plan=None, retransmit_timeout_ns=50_000):
    env = Environment()
    cluster = FpgaCluster(
        env, n,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=retransmit_timeout_ns),
        ),
    )
    if plan is not None:
        FaultInjector(plan).arm_cluster(cluster)
    return env, cluster


def stack(cluster, index):
    return cluster[index].shell.dynamic.rdma


def connect_stacks(cluster, a=0, b=1, qpn_a=1, qpn_b=2):
    qp_a = stack(cluster, a).create_qp(qpn_a, psn=10)
    qp_b = stack(cluster, b).create_qp(qpn_b, psn=20)
    qp_a.connect(qp_b.local)
    qp_b.connect(qp_a.local)
    return qp_a, qp_b


def ping(env, cluster, payload=b"ping", qpn_a=1, qpn_b=2):
    """One SEND node0 -> node1; returns (sender_proc, receiver_proc)."""
    outcome = {}

    def sender():
        try:
            yield from stack(cluster, 0).send(qpn_a, payload)
            outcome["sent"] = True
        except WrFlushError as exc:
            outcome["flush"] = exc

    def receiver():
        outcome["msg"] = yield from stack(cluster, 1).recv(qpn_b)

    send_proc = env.process(sender())
    recv_proc = env.process(receiver())
    recv_proc.defuse()  # flushed if the scenario kills node 1's QP
    return send_proc, recv_proc, outcome


# --------------------------------------------------- fire / must-not-fire


def test_node_crash_fires_and_takes_the_source_node_down():
    plan = FaultPlan(seed=3, rules=[FaultRule(site=NODE_CRASH, at_events=(0,))])
    env, cluster = make_cluster(plan=plan)
    connect_stacks(cluster)
    send_proc, recv_proc, outcome = ping(env, cluster)
    env.run(send_proc)
    env.run()
    # The first frame's source is node 0: the whole card went down.
    assert cluster.switch.crashes == 1
    assert cluster.crashes == 1
    assert not cluster[0].alive
    assert cluster[0].driver.node_down
    assert stack(cluster, 0).halted
    # The in-flight SEND surfaced as a typed flush, not a hang.
    assert isinstance(outcome.get("flush"), WrFlushError)
    assert "sent" not in outcome


def test_node_crash_must_not_fire_before_its_event():
    plan = FaultPlan(
        seed=3, rules=[FaultRule(site=NODE_CRASH, at_events=(10_000,))]
    )
    env, cluster = make_cluster(plan=plan)
    connect_stacks(cluster)
    send_proc, recv_proc, outcome = ping(env, cluster)
    env.run(AllOf(env, [send_proc, recv_proc]))
    env.run()
    assert outcome["msg"] == b"ping"
    assert cluster.switch.crashes == 0
    assert cluster.crashes == 0
    assert cluster[0].alive and cluster[1].alive


def test_link_flap_fires_and_auto_recovers_without_qp_error():
    plan = FaultPlan(seed=5, rules=[FaultRule(site=LINK_FLAP, at_events=(0,))])
    # Default retry budget (8 x 100 us) comfortably covers the 250 us
    # hold-off: a flap must cost retransmissions, never a QP error.
    env, cluster = make_cluster(plan=plan, retransmit_timeout_ns=100_000)
    qp_a, _ = connect_stacks(cluster)
    send_proc, recv_proc, outcome = ping(env, cluster, payload=b"flap")
    env.run(AllOf(env, [send_proc, recv_proc]))
    env.run()
    assert cluster.switch.link_flaps == 1
    assert outcome["msg"] == b"flap"  # delivered after the hold-off
    assert qp_a.state is QpState.RTS  # no escalation
    assert stack(cluster, 0).stats["retransmissions"] >= 1
    assert stack(cluster, 0).stats["qp_errors"] == 0


def test_net_partition_fires_and_persists_until_healed():
    plan = FaultPlan(
        seed=7, rules=[FaultRule(site=NET_PARTITION, at_events=(0,))]
    )
    env, cluster = make_cluster(plan=plan, retransmit_timeout_ns=100_000)
    connect_stacks(cluster)
    send_proc, recv_proc, outcome = ping(env, cluster, payload=b"part")
    env.run(until=300_000.0)
    # Severed bidirectionally, still retrying, nothing delivered.
    assert cluster.switch.partitions_created == 1
    assert cluster.switch.is_partitioned(cluster[0].mac, cluster[1].mac)
    assert "msg" not in outcome
    assert cluster.switch.heal_all_partitions() == 1
    env.run(AllOf(env, [send_proc, recv_proc]))
    env.run()
    assert outcome["msg"] == b"part"
    assert not cluster.switch.is_partitioned(cluster[0].mac, cluster[1].mac)


def test_unarmed_cluster_sites_never_perturb_a_run():
    plan = FaultPlan(seed=9)  # armed injector, empty plan
    env, cluster = make_cluster(plan=plan)
    connect_stacks(cluster)
    send_proc, recv_proc, outcome = ping(env, cluster)
    env.run(AllOf(env, [send_proc, recv_proc]))
    env.run()
    assert outcome["msg"] == b"ping"
    assert cluster.switch.crashes == 0
    assert cluster.switch.link_flaps == 0
    assert cluster.switch.partitions_created == 0


# -------------------------------------------------------- failure detector


def test_cluster_monitor_requires_rdma_service():
    env = Environment()
    cluster = FpgaCluster(env, 2, services=ServiceConfig(en_memory=True))
    with pytest.raises(ValueError, match="no RDMA service"):
        ClusterMonitor(cluster)


def test_cluster_monitor_detects_crash_and_restore():
    env, cluster = make_cluster(3)
    monitor = ClusterMonitor(
        cluster, ClusterHealthConfig(interval_ns=50_000.0)
    )
    env.run(until=200_000.0)  # heartbeats flowing, nobody suspected
    assert monitor.down_nodes == []
    assert monitor.heartbeats_received > 0
    cluster.crash_node(1)
    env.run(until=1_500_000.0)
    assert monitor.down_nodes == [1]
    kinds = [kind for _, kind, node, _reason in monitor.events if node == 1]
    assert kinds == ["node_crashed", "node_down"]
    cluster.restore_node(1)
    env.run(until=3_000_000.0)
    assert monitor.down_nodes == []
    kinds = [kind for _, kind, node, _reason in monitor.events if node == 1]
    assert kinds == ["node_crashed", "node_down", "node_restored", "node_up"]
    reasons = {
        kind: reason for _, kind, node, reason in monitor.events if node == 1
    }
    assert reasons["node_crashed"] == "crash"
    assert reasons["node_restored"] == "restore"
    assert monitor.rearms >= 2  # restore re-armed both heartbeat pairs
    monitor.stop()
    env.run()  # every loop parks or exits: the sim must drain


def test_health_section_gains_a_cluster_key():
    env, cluster = make_cluster(2)
    monitor = ClusterMonitor(cluster, ClusterHealthConfig(interval_ns=50_000.0))
    env.run(until=200_000.0)
    section = health_section(cluster[0].driver)
    assert section["cluster"]["nodes"] == 2
    assert section["cluster"]["down"] == []
    assert section["cluster"]["heartbeats_sent"] > 0
    # Nodes without a monitor attached report the card-only shape.
    bare_env, bare_cluster = make_cluster(2)
    assert "cluster" not in health_section(bare_cluster[0].driver)
    monitor.stop()
    env.run()


def test_cluster_telemetry_delta_skips_idle_nodes():
    env, cluster = make_cluster(3)
    telemetry = ClusterTelemetry(cluster)
    telemetry.snapshot()
    assert telemetry.node_rescans == 3  # cold: everything collected
    telemetry.snapshot()
    assert telemetry.node_skips == 3  # idle: every fingerprint unchanged
    connect_stacks(cluster)
    send_proc, recv_proc, outcome = ping(env, cluster)
    env.run(AllOf(env, [send_proc, recv_proc]))
    snap = telemetry.snapshot()
    # Traffic moved two nodes' fingerprints; the idle third is reused.
    assert telemetry.node_rescans == 5
    assert telemetry.node_skips == 4
    assert snap.counter("net.rdma_tx_packets").value > 0


def test_monitor_poll_refreshes_attached_telemetry():
    env, cluster = make_cluster(2)
    telemetry = ClusterTelemetry(cluster)
    monitor = ClusterMonitor(
        cluster, ClusterHealthConfig(interval_ns=50_000.0),
        telemetry=telemetry,
    )
    env.run(until=200_000.0)
    assert monitor.last_snapshot is not None
    assert telemetry.refreshes == monitor.polls
    assert monitor.last_snapshot.counter("cluster.heartbeats_sent").value > 0
    monitor.stop()
    env.run()


# ------------------------------------------------------ node-down admission


def test_node_down_rejects_new_work_until_restored():
    env, cluster = make_cluster(2)
    driver = cluster[0].driver
    from repro.api import CThread

    thread = CThread(driver, 0, pid=7)  # registers the pid context

    def alloc():
        buffer = yield from thread.get_mem(4096)
        return buffer

    proc = env.process(alloc())
    env.run(proc)
    descriptor = Descriptor(
        vfpga_id=0, pid=7, vaddr=proc.value.vaddr, length=64
    )
    cluster.crash_node(0)
    with pytest.raises(NodeDownError) as exc_info:
        driver.post_descriptor(descriptor, write=False)
    assert exc_info.value.node_index == 0
    assert "node 0 is down" in str(exc_info.value)
    cluster.restore_node(0)
    driver.post_descriptor(descriptor, write=False)  # admitted again
    env.run()


def test_node_down_rejects_scheduler_submit_then_replays():
    from repro.api import AppScheduler
    from repro.apps import HllApp
    from repro.synth import (
        BuildFlow,
        LockedShellCheckpoint,
        modules_for_services,
    )

    env, cluster = make_cluster(2)
    driver = cluster[0].driver
    shell = cluster[0].shell
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        "u55c", shell.config.services, shell.shell_id,
        sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    scheduler = AppScheduler(driver)
    scheduler.register("hll", flow.app_flow(checkpoint, ["hll"]).bitstream,
                       HllApp)

    def body(app):
        yield env.timeout(1_000.0)
        return "served"

    cluster.crash_node(0)
    with pytest.raises(NodeDownError):
        scheduler.submit("hll", body).send(None)  # rejected at the door
    cluster.restore_node(0)

    def client():
        result = yield from scheduler.submit("hll", body)
        return result

    proc = env.process(client())
    env.run(proc)
    assert proc.value == "served"
    assert scheduler.requests_served == 1


# ------------------------------------------- self-healing collectives (e2e)


def _i32_payload(value, count=12):
    return int(value).to_bytes(4, "little") * count


def run_failover():
    """The acceptance scenario; returns everything observable."""
    env = Environment()
    cluster = FpgaCluster(
        env, 4,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    monitor = ClusterMonitor(cluster, ClusterHealthConfig(interval_ns=50_000.0))
    group = cluster.collective_group(timeout_ns=5_000_000.0)
    record = {}

    def round_of(grp, count, tag):
        results, errors = {}, {}

        def member(rank):
            try:
                results[rank] = yield from grp.allreduce(
                    _i32_payload(rank + 1), rank=rank
                )
            except CollectiveAbortError as exc:
                errors[rank] = exc

        procs = [env.process(member(r)) for r in range(count)]
        env.run(AllOf(env, procs))
        record[f"{tag}_results"] = sorted(
            (rank, data) for rank, data in results.items()
        )
        record[f"{tag}_errors"] = sorted(
            (rank, str(exc)) for rank, exc in errors.items()
        )
        return results, errors

    # Round 1: all four ranks, clean.
    results, errors = round_of(group, 4, "clean")
    assert not errors
    assert all(results[r] == _i32_payload(10) for r in range(4))

    # Round 2: node 3 dies mid-collective.
    def killer():
        yield env.timeout(2_000.0)
        cluster.crash_node(3)

    env.process(killer())
    results, errors = round_of(group, 4, "crashed")
    # NCCL-style symmetric abort: every rank raised, none returned.
    assert not results
    assert sorted(errors) == [0, 1, 2, 3]
    assert all(exc.op == "allreduce" for exc in errors.values())

    # A dead communicator stays dead until rebuilt.
    with pytest.raises(CollectiveAbortError):
        group.allreduce(_i32_payload(1), rank=0).send(None)

    # Rebuild over the survivors and retry: 1 + 2 + 3 = 6 per element.
    group = group.rebuild([0, 1, 2])
    results, errors = round_of(group, 3, "rebuilt")
    assert not errors
    assert all(results[r] == _i32_payload(6) for r in range(3))
    assert group.stats["aborts"] >= 1
    assert group.stats["rebuilds"] == 1

    env.run(until=env.now + 1_000_000.0)
    record["down"] = list(monitor.down_nodes)
    record["monitor_events"] = [
        (time, kind, node, reason) for time, kind, node, reason in monitor.events
    ]
    monitor.stop()
    env.run()  # symmetric abort proven the hard way: the sim drains
    record["switch"] = sorted(cluster.switch.counters().items())
    record["stats"] = sorted(group.stats.items())
    record["end_ns"] = env.now
    return record


def test_crash_mid_allreduce_aborts_symmetrically_then_rebuilds():
    record = run_failover()
    assert record["clean_errors"] == []
    assert len(record["crashed_errors"]) == 4
    assert record["rebuilt_errors"] == []
    assert record["down"] == [3]  # the detector saw the crash too


def test_failover_is_deterministic_under_sanitizer(monkeypatch):
    from repro.analysis import SimSanitizer
    from repro.analysis.sanitizer import activate, current, deactivate

    def digest(record):
        return hashlib.sha256(
            repr(sorted(record.items())).encode()
        ).hexdigest()

    previous = current()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitizer = activate(SimSanitizer())
    try:
        digests = []
        for _ in range(2):
            sanitizer.reset()
            digests.append(digest(run_failover()))
            assert sanitizer.violations == [], sanitizer.report()
        assert digests[0] == digests[1]
    finally:
        if previous is not None:
            activate(previous)
        else:
            deactivate()


def run_chaos_scenario(site, at_event):
    """Seeded cluster chaos through the fault injector: abort, heal,
    rebuild, retry until a round completes.  Returns the observables."""
    env = Environment()
    cluster = FpgaCluster(
        env, 4,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    plan = FaultPlan(seed=11, rules=[FaultRule(site=site, at_events=(at_event,))])
    FaultInjector(plan).arm_cluster(cluster)
    monitor = ClusterMonitor(cluster, ClusterHealthConfig(interval_ns=50_000.0))
    group = cluster.collective_group(timeout_ns=2_000_000.0)
    members = list(range(4))
    record = {"rounds": []}

    for _ in range(6):
        n = len(members)
        results, errors = {}, {}

        def member(rank):
            try:
                results[rank] = yield from group.allreduce(
                    _i32_payload(rank + 1), rank=rank
                )
            except CollectiveAbortError as exc:
                errors[rank] = exc

        procs = [env.process(member(r)) for r in range(n)]
        env.run(AllOf(env, procs))
        record["rounds"].append(
            (n, sorted(results), sorted((r, str(e)) for r, e in errors.items()))
        )
        if not errors:
            expected = _i32_payload(n * (n + 1) // 2)
            assert all(results[r] == expected for r in range(n))
            break
        assert len(errors) == n and not results, "asymmetric abort"
        cluster.switch.heal_all_partitions()
        survivors = [m for m in members if cluster.nodes[m].alive]
        assert len(survivors) >= 2
        group = group.rebuild([members.index(m) for m in survivors])
        members = survivors
    else:
        raise AssertionError("no allreduce round ever completed")

    monitor.stop()
    env.run()
    record["members"] = list(members)
    record["switch"] = sorted(cluster.switch.counters().items())
    record["down"] = list(monitor.down_nodes)
    record["end_ns"] = env.now
    return record


@pytest.mark.parametrize("site,at_event", [
    (NODE_CRASH, 40),
    (NET_PARTITION, 25),
    (LINK_FLAP, 10),
])
def test_cluster_chaos_deterministic_under_sanitizer(monkeypatch, site, at_event):
    """Satellite acceptance: crash / partition-then-heal / link flap, each
    double-run byte-identical with the sanitizer watching."""
    from repro.analysis import SimSanitizer
    from repro.analysis.sanitizer import activate, current, deactivate

    def digest(record):
        return hashlib.sha256(
            repr(sorted(record.items())).encode()
        ).hexdigest()

    previous = current()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitizer = activate(SimSanitizer())
    try:
        digests = []
        for _ in range(2):
            sanitizer.reset()
            digests.append(digest(run_chaos_scenario(site, at_event)))
            assert sanitizer.violations == [], sanitizer.report()
        assert digests[0] == digests[1]
    finally:
        if previous is not None:
            activate(previous)
        else:
            deactivate()
