"""Smoke test for benchmarks/perf_harness.py: quick suite + schema."""

import importlib.util
import json
import os
import sys

import pytest

HARNESS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "perf_harness.py",
)


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("perf_harness", HARNESS)
    module = importlib.util.module_from_spec(spec)
    sys.modules["perf_harness"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_results(harness):
    return harness.run_suite(quick=True)


def test_quick_suite_has_all_valid_workloads(harness, quick_results):
    assert harness.validate_results(quick_results) == []
    names = [wl["name"] for wl in quick_results["workloads"]]
    assert names == [
        "hbm_scaling",
        "rdma_msgsize",
        "multitenant_aes",
        "scheduler_churn",
        "engine_events",
        "ring_submit",
        "net_incast",
    ]


def test_quick_suite_measures_real_work(harness, quick_results):
    by_name = {wl["name"]: wl for wl in quick_results["workloads"]}
    assert by_name["hbm_scaling"]["throughput_gbps"] > 0
    assert by_name["rdma_msgsize"]["latency_ns"]["p99"] >= \
        by_name["rdma_msgsize"]["latency_ns"]["p50"] > 0
    assert by_name["multitenant_aes"]["detail"]["fairness_min_over_max"] > 0
    churn = by_name["scheduler_churn"]
    assert churn["ops_per_s"] > 0
    assert churn["detail"]["reconfigurations"] >= 2
    assert churn["detail"]["reconfig_failures"] == 0
    # The simulator profiler contributed hot-path rows.
    assert churn["detail"]["profile"]
    assert {"component", "events", "wall_s"} <= set(churn["detail"]["profile"][0])
    # Edge-triggered loop: the whole burst coalesces into few wakeups,
    # and the per-request event overhead stays within the asserted bound.
    assert churn["detail"]["dispatches"] == churn["detail"]["requests"]
    assert churn["detail"]["wakeups"] <= churn["detail"]["dispatches"]
    assert 0 < churn["detail"]["events_per_request"] <= \
        harness.SCHED_EVENTS_PER_REQUEST_BOUND
    engine = by_name["engine_events"]
    assert engine["ops_per_s"] > 0
    assert engine["detail"]["events_per_sec"] > 0
    assert engine["detail"]["events_processed"] > 0
    ring = by_name["ring_submit"]["detail"]
    # Batched doorbell submission: fewer total events per request than
    # the per-call ioctl, collapsed client wakeups, and > 1 descriptor
    # fetched per doorbell (with one forced full-ring stall).
    assert 0 < ring["events_ratio"] <= harness.RING_EVENTS_RATIO_BOUND
    assert 0 < ring["submit_events_ratio"] <= \
        harness.RING_SUBMIT_EVENTS_RATIO_BOUND
    assert ring["descriptors_per_doorbell"] > 1.0
    assert ring["full_stalls"] >= 1
    assert ring["batches"] == ring["doorbells"]
    incast = by_name["net_incast"]["detail"]
    # The collapse-avoidance gate: DCQCN-on beats DCQCN-off by the
    # validator-enforced ratio and converges to a fair allocation.
    assert incast["collapse_ratio"] >= harness.NET_COLLAPSE_RATIO_BOUND
    assert incast["jain_on"] >= harness.NET_FAIRNESS_BOUND
    assert incast["tail_drops_on"] < incast["tail_drops_off"]


def test_validator_rejects_malformed_results(harness, quick_results):
    broken = json.loads(json.dumps(quick_results))
    broken["workloads"] = broken["workloads"][:2]
    assert harness.validate_results(broken)
    broken = json.loads(json.dumps(quick_results))
    broken["workloads"][0]["throughput_gbps"] = "fast"
    assert harness.validate_results(broken)
    assert harness.validate_results({"schema_version": 999})


def test_cli_writes_and_validates_file(harness, tmp_path):
    out = tmp_path / "bench.json"
    assert harness.main(["--quick", "--out", str(out)]) == 0
    assert harness.main(["--validate", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["quick"] is True
    out.write_text(json.dumps({"suite": "perf_harness"}))
    assert harness.main(["--validate", str(out)]) == 1
