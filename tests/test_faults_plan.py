"""Unit tests for the fault-injection framework itself.

Covers the plan/rule validation surface, the determinism contract of the
injector's per-rule RNG substreams, and the retry policy arithmetic.
"""

import pytest

from repro.faults import (
    FAULT_SITES,
    HBM_ECC_SINGLE,
    ICAP_CRC,
    NET_DROP,
    PCIE_REPLAY,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
)
from repro.sim.tracing import Tracer


# ------------------------------------------------------------------- rules

def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultRule(site="net.explode")  # repro: allow[FLT001] negative test: the typo is the point


def test_probability_range_enforced():
    with pytest.raises(ValueError, match="probability"):
        FaultRule(site=NET_DROP, probability=1.5)
    with pytest.raises(ValueError, match="probability"):
        FaultRule(site=NET_DROP, probability=-0.1)


def test_negative_max_fires_rejected():
    with pytest.raises(ValueError, match="max_fires"):
        FaultRule(site=NET_DROP, max_fires=-1)


def test_plan_build_maps_keywords_to_sites():
    plan = FaultPlan.build(seed=9, net_drop=0.05, pcie_replay=0.01, icap_crc=0.5)
    assert plan.seed == 9
    assert plan.sites() == {NET_DROP, PCIE_REPLAY, ICAP_CRC}
    (drop_rule,) = plan.for_site(NET_DROP)
    assert drop_rule.probability == 0.05


def test_plan_describe_round_trips_rules():
    plan = FaultPlan(seed=4, rules=[FaultRule(site=ICAP_CRC, at_events=(0, 2))])
    text = plan.describe()
    assert "seed=4" in text and "icap.crc" in text and "(0, 2)" in text


def test_every_site_is_buildable():
    for site in FAULT_SITES:
        FaultRule(site=site, probability=0.1)


# ---------------------------------------------------------------- injector

def test_at_events_fire_deterministically():
    plan = FaultPlan(rules=[FaultRule(site=ICAP_CRC, at_events=(1, 3))])
    injector = FaultInjector(plan)
    fired = [injector.fires(ICAP_CRC) for _ in range(5)]
    assert fired == [False, True, False, True, False]


def test_match_predicate_filters_event_stream():
    plan = FaultPlan(
        rules=[FaultRule(site=NET_DROP, at_events=(0,), match=lambda c: c == "b")]
    )
    injector = FaultInjector(plan)
    # Non-matching events are invisible to the rule's event counter.
    assert injector.fires(NET_DROP, "a") is False
    assert injector.fires(NET_DROP, "b") is True
    assert injector.fires(NET_DROP, "b") is False


def test_max_fires_caps_probabilistic_rule():
    plan = FaultPlan(seed=1, rules=[FaultRule(site=NET_DROP, probability=1.0, max_fires=2)])
    injector = FaultInjector(plan)
    assert sum(injector.fires(NET_DROP) for _ in range(10)) == 2


def test_same_seed_reproduces_fire_pattern():
    def pattern(seed):
        injector = FaultInjector(FaultPlan.build(seed=seed, net_drop=0.3))
        return [injector.fires(NET_DROP) for _ in range(200)]

    assert pattern(42) == pattern(42)
    assert pattern(42) != pattern(43)  # astronomically unlikely to collide


def test_substreams_are_independent_across_sites():
    """Arming an extra site must not perturb another site's draw sequence."""

    def net_pattern(plan):
        injector = FaultInjector(plan)
        out = []
        for i in range(100):
            out.append(injector.fires(NET_DROP))
            if HBM_ECC_SINGLE in plan.sites() and i % 3 == 0:
                injector.fires(HBM_ECC_SINGLE)  # interleaved foreign events
        return out

    alone = net_pattern(FaultPlan.build(seed=7, net_drop=0.25))
    with_hbm = net_pattern(FaultPlan.build(seed=7, net_drop=0.25, hbm_ecc_single=0.5))
    assert alone == with_hbm


def test_fire_history_does_not_shift_substream():
    """max_fires exhausting early must not advance/stall the RNG stream."""
    base = FaultInjector(FaultPlan(seed=5, rules=[FaultRule(site=NET_DROP, probability=0.3)]))
    capped = FaultInjector(
        FaultPlan(seed=5, rules=[FaultRule(site=NET_DROP, probability=0.3, max_fires=2)])
    )
    base_fires = [base.fires(NET_DROP) for _ in range(50)]
    capped_fires = [capped.fires(NET_DROP) for _ in range(50)]
    # The capped run fires on a strict prefix of the base run's events.
    assert [i for i, f in enumerate(capped_fires) if f] == \
        [i for i, f in enumerate(base_fires) if f][:2]


def test_unknown_site_query_raises():
    injector = FaultInjector(FaultPlan())
    with pytest.raises(ValueError, match="unknown fault site"):
        injector.fires("gpu.meltdown")  # repro: allow[FLT001] negative test: the typo is the point


def test_unarmed_site_never_fires():
    injector = FaultInjector(FaultPlan.build(seed=0, net_drop=1.0))
    assert injector.fires(PCIE_REPLAY) is False


def test_summary_counts_events_and_fires():
    injector = FaultInjector(FaultPlan(rules=[FaultRule(site=ICAP_CRC, at_events=(0,))]))
    injector.fires(ICAP_CRC)
    injector.fires(ICAP_CRC)
    assert injector.summary() == {ICAP_CRC: {"events": 2, "fires": 1}}
    assert injector.total_fires() == 1


def test_tracer_records_each_fire():
    tracer = Tracer()
    injector = FaultInjector(
        FaultPlan(rules=[FaultRule(site=ICAP_CRC, at_events=(1,))]), tracer=tracer
    )
    for _ in range(3):
        injector.fires(ICAP_CRC)
    records = tracer.filter(source="faults")
    assert len(records) == 1
    assert records[0].kind == ICAP_CRC
    assert records[0].payload == 1  # the site-event index that fired


# ------------------------------------------------------------ retry policy

def test_backoff_doubles_until_cap():
    policy = RetryPolicy(max_retries=5, base_backoff_ns=100.0, backoff_cap_ns=450.0)
    assert [policy.backoff_ns(a) for a in (1, 2, 3, 4)] == [100.0, 200.0, 400.0, 450.0]


def test_backoff_attempt_is_one_based():
    with pytest.raises(ValueError):
        RetryPolicy().backoff_ns(0)


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_ns=200.0, backoff_cap_ns=100.0)


def test_policy_sleep_advances_clock():
    from repro.sim import Environment

    env = Environment()
    policy = RetryPolicy(base_backoff_ns=1_000.0)

    def proc():
        yield from policy.sleep(env, 1)
        yield from policy.sleep(env, 2)

    env.run(env.process(proc()))
    assert env.now == 3_000.0
