"""Smoke tests for the experiment runners (small parameters).

The full-scale assertions live in ``benchmarks/``; here we make sure the
runners execute, return well-formed results, and hold their key claims on
reduced workloads so plain ``pytest tests/`` covers them too.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    format_table,
    run_fig7a,
    run_fig7b,
    run_fig8,
    run_fig10a,
    run_fig10b,
    run_table1,
    run_table2,
    run_table3,
)


def test_experiment_result_render():
    result = ExperimentResult("Figure X", "demo")
    result.add_row(a=1, b=2.5)
    result.add_row(a=3, b=0.001)
    result.notes.append("a note")
    text = result.render()
    assert "Figure X" in text
    assert "a note" in text
    assert result.column("a") == [1, 3]


def test_format_table_alignment():
    rows = [{"x": 1, "y": "long-value"}, {"x": 22, "y": "s"}]
    lines = format_table(rows).splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert len(set(len(line.rstrip()) for line in lines[:2])) >= 1


def test_table1_runner():
    result = run_table1()
    assert len(result.rows) == 15
    assert result.rows[-1]["shell"] == "Coyote v2"


def test_table2_runner():
    result = run_table2(bitstream_mb=4)
    measured = {row["application"]: row["max_throughput_mbps"] for row in result.rows}
    assert measured["Coyote v2 ICAP"] == pytest.approx(800, rel=0.02)


def test_table3_runner_single_trial():
    result = run_table3(trials=1)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row["vivado_ms"] > 10 * row["total_ms"]


def test_fig7a_runner_small():
    result = run_fig7a(channels=(1, 4), transfer_mb=1)
    series = {row["channels"]: row["throughput_gbps"] for row in result.rows}
    assert series[4] > 3 * series[1]


def test_fig7b_runner():
    result = run_fig7b()
    assert all(13 <= row["savings_pct"] <= 22 for row in result.rows)


def test_fig8_runner_small():
    result = run_fig8(max_tenants=2)
    assert result.rows[1]["fairness"] > 0.9


def test_fig10a_runner_small():
    result = run_fig10a(message_kb=(4, 32))
    series = {row["message_kb"]: row["throughput_mbps"] for row in result.rows}
    assert series[32] > series[4]


def test_fig10b_runner_small():
    result = run_fig10b(threads=(1, 4))
    series = {row["threads"]: row["speedup"] for row in result.rows}
    assert series[4] > 3.0
