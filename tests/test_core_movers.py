"""Unit tests for the data movers and the flit assembler."""

import pytest

from repro.axi.types import Flit
from repro.core.movers import _FlitAssembler
from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
    StreamType,
)
from repro.apps import PassThroughApp
from repro.core import MoverConfig


# ---------------------------------------------------------- flit assembler

def test_assembler_exact_fit():
    asm = _FlitAssembler()
    asm.push(Flit(length=10, data=b"0123456789"))
    assert asm.available == 10
    assert asm.take(10) == b"0123456789"
    assert asm.available == 0


def test_assembler_split_across_takes():
    asm = _FlitAssembler()
    asm.push(Flit(length=10, data=b"abcdefghij"))
    assert asm.take(4) == b"abcd"
    assert asm.take(6) == b"efghij"


def test_assembler_merges_flits():
    asm = _FlitAssembler()
    asm.push(Flit(length=3, data=b"foo"))
    asm.push(Flit(length=3, data=b"bar"))
    assert asm.take(6) == b"foobar"


def test_assembler_timing_only_returns_none():
    asm = _FlitAssembler()
    asm.push(Flit(length=8))
    assert asm.available == 8
    assert asm.take(8) is None


def test_assembler_mixed_stream_degrades_to_none():
    asm = _FlitAssembler()
    asm.push(Flit(length=4, data=b"real"))
    asm.push(Flit(length=4))  # timing only
    assert asm.take(8) is None


def test_assembler_overtake_rejected():
    asm = _FlitAssembler()
    asm.push(Flit(length=4, data=b"real"))
    with pytest.raises(ValueError):
        asm.take(5)


def test_assembler_resets_after_drain():
    asm = _FlitAssembler()
    asm.push(Flit(length=4))
    assert asm.take(4) is None
    # New all-real run after the stream boundary.
    asm.push(Flit(length=4, data=b"good"))
    assert asm.take(4) == b"good"


# -------------------------------------------------- odd-size kernel output

class ShrinkingApp(PassThroughApp):
    """Echoes half of every input flit: output flits never align with
    4 KB write packets, exercising the reassembly path."""

    name = "shrinker"

    def _lane(self, vfpga, dest):
        while True:
            flit = yield from vfpga.recv(self.stream, dest)
            half = flit.length // 2
            out = Flit(
                length=half,
                data=flit.data[:half] if flit.data is not None else None,
                tid=flit.tid,
                last=flit.last,
            )
            yield from vfpga.send(out, self.stream, dest)


def test_unaligned_kernel_output_reassembled():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    shell.load_app(0, ShrinkingApp())
    ct = CThread(driver, 0, pid=1)
    payload = bytes(range(256)) * 64  # 16 KB in -> 8 KB out

    def main():
        src = yield from ct.get_mem(len(payload))
        dst = yield from ct.get_mem(len(payload) // 2)
        ct.write_buffer(src.vaddr, payload)
        sg = SgEntry(local=LocalSg(
            src_addr=src.vaddr, src_len=len(payload),
            dst_addr=dst.vaddr, dst_len=len(payload) // 2,
        ))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        return ct.read_buffer(dst.vaddr, len(payload) // 2)

    result = env.run(env.process(main()))
    expected = b"".join(
        payload[i : i + 2048] for i in range(0, len(payload), 4096)
    )
    assert result == expected


# --------------------------------------------------------------- accounting

def test_mover_byte_counters():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1,
                                   services=ServiceConfig(mover=MoverConfig(carry_data=False))))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=1)

    def main():
        src = yield from ct.get_mem(1 << 16)
        dst = yield from ct.get_mem(1 << 16)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 16,
                                   dst_addr=dst.vaddr, dst_len=1 << 16))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    env.run(env.process(main()))
    mover = shell.dynamic.host_mover
    assert mover.bytes_read == 1 << 16
    assert mover.bytes_written == 1 << 16


def test_rr_arbiter_sees_both_tenants():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=2,
                                   services=ServiceConfig(mover=MoverConfig(carry_data=False))))
    driver = Driver(env, shell)
    for v in range(2):
        shell.load_app(v, PassThroughApp())
    from repro.sim import AllOf

    def client(v):
        ct = CThread(driver, v, pid=10 + v)
        src = yield from ct.get_mem(1 << 16)
        dst = yield from ct.get_mem(1 << 16)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 16,
                                   dst_addr=dst.vaddr, dst_len=1 << 16))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    procs = [env.process(client(v)) for v in range(2)]
    env.run(AllOf(env, procs))
    packets_each = (1 << 16) // MoverConfig().packet_bytes
    assert shell.dynamic.host_mover.rd_arbiter.grants == 2 * packets_each


def test_assembler_mixed_partial_takes_consume_real_prefix():
    asm = _FlitAssembler()
    asm.push(Flit(length=4, data=b"real"))
    asm.push(Flit(length=4))  # timing only
    # A take smaller than the buffered real bytes still returns None —
    # the run is tainted — and consumes the real prefix.
    assert asm.take(3) is None
    assert asm.available == 5
    # Real bytes pushed mid-run stay tainted until the run drains.
    asm.push(Flit(length=2, data=b"ok"))
    assert asm.take(7) is None
    assert asm.available == 0
    # Boundary reached with nothing left over: the next run is clean.
    asm.push(Flit(length=2, data=b"ok"))
    assert asm.take(2) == b"ok"


def test_assembler_taint_clears_only_at_stream_boundary():
    asm = _FlitAssembler()
    asm.push(Flit(length=4))  # timing-only
    assert asm.take(2) is None
    asm.push(Flit(length=2, data=b"hi"))  # real bytes join a tainted run
    assert asm.take(4) is None
    assert asm.available == 0
