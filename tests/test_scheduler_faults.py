"""Scheduler reliability: injected reconfiguration failures and starvation.

Regression coverage for two scheduler bugs found while auditing the
measurement path:

* the scheduler loop used to yield ``driver.reconfigure_app`` *outside*
  its try/except, so a reconfiguration failure (e.g. an injected ICAP CRC
  fault exhausting the driver's retries) killed the scheduler process and
  silently deadlocked every queued and future request;
* ``_pick`` affinity had no bypass bound, so a steady stream of
  resident-kernel requests could starve a pending kernel switch forever.
"""

import pytest

from repro import Driver, Environment, ServiceConfig, Shell, ShellConfig
from repro.api import AppScheduler
from repro.apps import AesEcbApp, HllApp
from repro.core import ReconfigError
from repro.driver import card_report
from repro.faults import ICAP_CRC, FaultInjector, FaultPlan, FaultRule
from repro.sim import AllOf
from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services


def make_scheduler(affinity_window=8, plan=None):
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False)))
    driver = Driver(env, shell)
    if plan is not None:
        FaultInjector(plan).arm(shell=shell)
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        "u55c", shell.config.services, shell.shell_id,
        sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    scheduler = AppScheduler(driver, affinity_window=affinity_window)
    scheduler.register("hll", flow.app_flow(checkpoint, ["hll"]).bitstream, HllApp)
    scheduler.register(
        "aes", flow.app_flow(checkpoint, ["aes_ecb"]).bitstream, AesEcbApp
    )
    return env, shell, driver, scheduler


def simple_body(env, tag, log, duration=1000.0):
    def body(app):
        log.append((tag, type(app).__name__))
        yield env.timeout(duration)
        return tag

    return body


def exhausting_crc_plan():
    """Fail the first reconfiguration permanently: the initial ICAP program
    plus every retry the driver's default policy (max_retries=3) makes."""
    return FaultPlan(seed=7, rules=[FaultRule(site=ICAP_CRC, at_events=(0, 1, 2, 3))])


def test_reconfig_failure_fails_submit_cleanly_and_loop_survives():
    """ISSUE acceptance: the affected submit() fails, later requests for
    other kernels complete, and nothing deadlocks."""
    env, shell, driver, scheduler = make_scheduler(plan=exhausting_crc_plan())
    log = []
    outcome = {}

    def failing_client():
        try:
            yield from scheduler.submit("hll", simple_body(env, "doomed", log))
        except ReconfigError as exc:
            outcome["error"] = exc

    def surviving_client():
        outcome["ok"] = yield from scheduler.submit(
            "aes", simple_body(env, "survivor", log)
        )

    procs = [env.process(failing_client()), env.process(surviving_client())]
    # A scheduler crash would leave the second submit waiting forever and
    # surface as the engine's deadlock error here.
    env.run(AllOf(env, procs))
    assert isinstance(outcome["error"], ReconfigError)
    assert outcome["ok"] == "survivor"
    assert log == [("survivor", "AesEcbApp")]  # the doomed body never ran
    assert scheduler.reconfig_failures == 1
    assert scheduler.requests_served == 1
    assert scheduler.loaded == "aes"


def test_reconfig_failure_keeps_serving_future_requests():
    """Requests submitted *after* the failure are also served (the loop is
    alive, not just draining the pre-failure queue)."""
    env, shell, driver, scheduler = make_scheduler(plan=exhausting_crc_plan())
    log = []

    def doomed():
        with pytest.raises(ReconfigError):
            yield from scheduler.submit("hll", simple_body(env, "doomed", log))

    env.run(env.process(doomed()))

    def late_client():
        return (yield from scheduler.submit("aes", simple_body(env, "late", log)))

    assert env.run(env.process(late_client())) == "late"
    assert scheduler.reconfig_failures == 1


def test_reconfig_failure_counted_in_card_report_telemetry():
    env, shell, driver, scheduler = make_scheduler(plan=exhausting_crc_plan())
    log = []

    def doomed():
        with pytest.raises(ReconfigError):
            yield from scheduler.submit("hll", simple_body(env, "doomed", log))

    env.run(env.process(doomed()))
    telemetry = card_report(driver)["telemetry"]
    assert telemetry["scheduler"]["reconfig_failures"] == 1
    assert telemetry["scheduler"]["requests_served"] == 0
    # The driver's retry ledger shows the recovery attempts that preceded
    # the clean failure.
    assert driver.reconfig_retries == driver.retry_policy.max_retries


def test_affinity_cannot_starve_beyond_window():
    """A queued kernel switch is bypassed at most ``affinity_window`` times
    by resident-kernel requests, then served unconditionally."""
    env, shell, driver, scheduler = make_scheduler(affinity_window=2)
    log = []

    def client(kernel, tag, delay=0.0):
        if delay:
            yield env.timeout(delay)
        yield from scheduler.submit(kernel, simple_body(env, tag, log))

    procs = [env.process(client("hll", "h0"))]
    # While h0 runs, queue a pending switch (a1) behind a stream of
    # resident-kernel requests that all sit inside the affinity window.
    for tag in ("a1", "h1", "h2", "h3", "h4"):
        kernel = "aes" if tag.startswith("a") else "hll"
        procs.append(env.process(client(kernel, tag, delay=1.0)))
    env.run(AllOf(env, procs))
    order = [tag for tag, _ in log]
    # h1 and h2 bypass the pending aes request (2 == affinity_window),
    # then a1 must be served even though h3/h4 are still resident hits.
    assert order == ["h0", "h1", "h2", "a1", "h3", "h4"]
    assert order.index("a1") == 1 + scheduler.affinity_window
    assert scheduler.reconfigurations == 3  # hll, aes, hll again
    assert scheduler.affinity_hits == 3  # h1, h2, h4
    assert scheduler.reconfig_failures == 0


def test_queue_wait_histogram_records_every_pick():
    env, shell, driver, scheduler = make_scheduler()
    log = []

    def client(i):
        yield from scheduler.submit("hll", simple_body(env, f"r{i}", log))

    procs = [env.process(client(i)) for i in range(4)]
    env.run(AllOf(env, procs))
    assert scheduler.queue_wait.count == 4
    # Later requests waited behind earlier bodies: p99 >> p50 floor of 0.
    assert scheduler.queue_wait.max > 0
    assert scheduler.queue_depth_high_water >= 2
