"""TCP and RDMA sharing one CMAC through the protocol demux."""

import pytest

from repro import (
    CThread,
    Driver,
    Environment,
    Oper,
    RdmaSg,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.net import MacAddress, Switch
from repro.sim import AllOf

BOTH = ServiceConfig(en_memory=True, en_rdma=True, en_tcp=True)


def make_pair():
    env = Environment()
    switch = Switch(env)
    mac_a, mac_b = MacAddress(0x02_0000_0C01), MacAddress(0x02_0000_0C02)
    shell_a = Shell(env, ShellConfig(num_vfpgas=1, services=BOTH),
                    switch=switch, mac=mac_a, ip=0x0A000001)
    shell_b = Shell(env, ShellConfig(num_vfpgas=1, services=BOTH),
                    switch=switch, mac=mac_b, ip=0x0A000002)
    return env, switch, (shell_a, Driver(env, shell_a), mac_a), (shell_b, Driver(env, shell_b), mac_b)


def test_service_names_include_both():
    assert {"rdma", "tcp"} <= BOTH.service_names


def test_concurrent_tcp_and_rdma_on_one_cmac():
    env, switch, (sa, da, mac_a), (sb, db, mac_b) = make_pair()
    tcp_payload = b"tcp side " * 1000
    rdma_payload = bytes(range(256)) * 256
    results = {}

    # TCP endpoints.
    sb.dynamic.tcp.listen(80)

    def tcp_server():
        conn = yield from sb.dynamic.tcp.accept(80)
        results["tcp"] = yield from conn.recv(len(tcp_payload))

    def tcp_client():
        conn = yield from sa.dynamic.tcp.connect(mac_b, 0x0A000002, 80, 5000)
        yield from conn.send(tcp_payload)

    # RDMA endpoints on the same cards, same CMACs.
    ct_a = CThread(da, 0, pid=1)
    ct_b = CThread(db, 0, pid=2)
    qa = ct_a.create_qp(1, psn=5)
    qb = ct_b.create_qp(2, psn=9)
    qa.connect(qb.local)
    qb.connect(qa.local)

    def rdma_flow():
        src = yield from ct_a.get_mem(len(rdma_payload))
        dst = yield from ct_b.get_mem(len(rdma_payload))
        ct_a.write_buffer(src.vaddr, rdma_payload)
        yield from ct_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(rdma_payload), qpn=1)),
        )
        results["rdma"] = ct_b.read_buffer(dst.vaddr, len(rdma_payload))

    procs = [
        env.process(tcp_server()),
        env.process(tcp_client()),
        env.process(rdma_flow()),
    ]
    env.run(AllOf(env, procs))
    assert results["tcp"] == tcp_payload
    assert results["rdma"] == rdma_payload
    # Both protocols actually used the shared port.
    assert sa.dynamic.rdma.stats["tx_packets"] > 0
    assert sa.dynamic.tcp.stats["tx"] > 0


def test_switch_detach_validation():
    env = Environment()
    switch = Switch(env)
    with pytest.raises(ValueError):
        switch.detach(MacAddress(1))
