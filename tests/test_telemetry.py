"""Tests for repro.telemetry: metrics, spans, profiler and collection."""

import pytest

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import PassThroughApp
from repro.driver import card_report
from repro.sim import Tracer
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SimProfiler,
    SpanRecorder,
    collect_card_metrics,
)


# ----------------------------------------------------------------- metrics


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_high_water():
    g = Gauge("depth")
    g.set(3)
    g.set(10)
    g.set(2)
    assert g.value == 2
    assert g.high_water == 10
    g.add(5)
    assert g.value == 7


def test_histogram_buckets_and_percentiles():
    h = Histogram("lat", bounds=[10, 100, 1000])
    for v in (1, 5, 50, 500, 5000):
        h.observe(v)
    assert h.count == 5
    assert h.buckets == [2, 1, 1, 1]  # <=10, <=100, <=1000, overflow
    assert h.mean == pytest.approx(1111.2)
    assert h.min == 1 and h.max == 5000
    assert 0 < h.percentile(50) <= 100
    assert h.percentile(100) == 5000
    assert Histogram("e", [1]).percentile(50) == 0.0  # empty


def test_histogram_merge_requires_same_bounds():
    a = Histogram("a", [10, 100])
    b = Histogram("b", [10, 100])
    for v in (5, 50):
        a.observe(v)
    b.observe(500)
    a.merge(b)
    assert a.count == 3
    assert a.buckets == [1, 1, 1]
    assert a.max == 500
    with pytest.raises(ValueError):
        a.merge(Histogram("c", [1, 2]))


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("x", [])
    with pytest.raises(ValueError):
        Histogram("x", [10, 10])
    with pytest.raises(ValueError):
        Histogram("x", [10, 5])


def test_registry_get_or_create_and_type_guard():
    reg = MetricsRegistry()
    assert reg.counter("net.tx") is reg.counter("net.tx")
    reg.counter("net.tx").inc(3)
    assert reg.counter("net.tx").value == 3
    with pytest.raises(TypeError):
        reg.gauge("net.tx")
    assert "net.tx" in reg
    assert len(reg) == 1


def test_registry_snapshot_nests_dot_paths():
    reg = MetricsRegistry()
    reg.counter("pcie.h2c_bytes").inc(64)
    reg.counter("net.qp.3.ops").inc(2)
    reg.gauge("sim.queue").set(7)
    snap = reg.snapshot()
    assert snap["pcie"]["h2c_bytes"] == 64
    assert snap["net"]["qp"]["3"]["ops"] == 2
    assert snap["sim"]["queue"] == {"value": 7, "high_water": 7}


def test_registry_merge_is_additive_and_isolated():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("merge.c").inc(1)
    b.counter("merge.c").inc(2)
    b.counter("merge.only_b").inc(5)
    b.histogram("merge.h", [10]).observe(3)
    a.merge(b)
    assert a.counter("merge.c").value == 3
    assert a.counter("merge.only_b").value == 5
    assert a.histogram("merge.h", [10]).count == 1
    # Merging copied, not aliased: mutating the merged-into registry must
    # not write through into the source.
    a.counter("merge.only_b").inc(100)
    assert b.counter("merge.only_b").value == 5


# ------------------------------------------------------------------- spans


def test_spans_parent_child_self_time():
    env = Environment()
    recorder = SpanRecorder(env)

    def work():
        outer = recorder.begin("driver", "reconfigure")
        yield env.timeout(10)
        inner = recorder.begin("icap", "program", parent=outer)
        yield env.timeout(30)
        recorder.finish(inner)
        yield env.timeout(5)
        recorder.finish(outer)

    env.run(env.process(work()))
    by = recorder.by_component()
    assert by["icap"]["total_ns"] == 30
    assert by["driver"]["total_ns"] == 45
    assert by["driver"]["self_ns"] == 15  # 45 minus the ICAP child
    assert "driver" in recorder.format()


def test_spans_emit_to_tracer_ring_buffer():
    env = Environment()
    tracer = Tracer(max_records=2)
    recorder = SpanRecorder(env, tracer=tracer)

    def work():
        for i in range(5):
            span = recorder.begin("daemon", f"req{i}")
            yield env.timeout(1)
            recorder.finish(span)

    env.run(env.process(work()))
    assert len(tracer.records) == 2  # ring buffer bounded the span stream
    assert tracer.dropped == 3
    assert all(r.kind == "span" for r in tracer.records)


def test_span_double_finish_rejected():
    env = Environment()
    recorder = SpanRecorder(env)
    span = recorder.begin("x", "y")
    recorder.finish(span)
    with pytest.raises(ValueError):
        recorder.finish(span)


# ------------------------------------------------------------ engine counters


def test_engine_counts_events_and_queue_high_water():
    env = Environment()

    def ticker():
        for _ in range(10):
            yield env.timeout(1)

    env.process(ticker())
    env.run()
    assert env.events_processed > 10
    assert env.queue_high_water >= 1


# ---------------------------------------------------------------- profiler


def test_profiler_attributes_named_processes():
    env = Environment()

    def fast():
        for _ in range(50):
            yield env.timeout(1)

    def slow():
        for _ in range(50):
            yield env.timeout(2)

    env.process(fast(), name="fast-0")
    env.process(slow(), name="slow-0")
    profiler = SimProfiler().attach(env)
    env.run()
    profiler.detach()
    assert env.profiler is None
    rows = {r["component"]: r for r in profiler.report()}
    # Instance suffixes are folded; both processes show up with their
    # events and a wall-time measurement.
    assert rows["fast"]["events"] >= 50
    assert rows["slow"]["events"] >= 50
    assert profiler.total_events == sum(r["events"] for r in profiler.report())
    assert profiler.total_wall_s >= 0.0
    assert "component" in profiler.format()


def test_profiler_does_not_change_results():
    def run(profiled):
        env = Environment()
        out = []

        def worker():
            for i in range(20):
                yield env.timeout(3)
                out.append((env.now, i))

        env.process(worker(), name="w")
        prof = SimProfiler().attach(env) if profiled else None
        env.run()
        if prof:
            prof.detach()
        return out

    assert run(False) == run(True)


def test_profiler_single_attachment():
    env = Environment()
    SimProfiler().attach(env)
    with pytest.raises(RuntimeError):
        SimProfiler().attach(env)


# --------------------------------------------------------------- collection


def run_some_traffic():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    ct = CThread(driver, 0, pid=11)

    def main():
        src = yield from ct.get_mem(1 << 16)
        dst = yield from ct.get_mem(1 << 16)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 16,
                                   dst_addr=dst.vaddr, dst_len=1 << 16))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)

    env.run(env.process(main()))
    env.run()
    return driver


def test_collect_card_metrics_domains():
    driver = run_some_traffic()
    snap = collect_card_metrics(driver).snapshot()
    assert snap["sim"]["events_processed"] > 0
    assert snap["sim"]["event_queue"]["high_water"] >= 1
    assert snap["pcie"]["h2c_bytes"] == 1 << 16
    assert snap["pcie"]["h2c_transfers"] >= 1
    assert snap["pcie"]["h2c_in_flight"]["high_water"] >= 1
    assert snap["mem"]["tlb_hits"] > 0
    assert snap["mem"]["tlb_walks"] >= 0


def test_card_report_has_telemetry_section():
    driver = run_some_traffic()
    report = card_report(driver)
    telemetry = report["telemetry"]
    assert telemetry["pcie"]["h2c_bytes"] == report["pcie"]["h2c_bytes"]
    assert "mem" in telemetry and "sim" in telemetry


def test_collect_surfaces_stuck_at_drain_gauge():
    from repro.analysis import SimSanitizer

    driver = run_some_traffic()
    env = driver.env
    # Detached, the gauge is absent (it is only knowable while
    # processes are tracked).
    env.sanitizer = None
    assert "stuck_at_drain" not in collect_card_metrics(driver).snapshot()["sim"]
    # A fresh sanitizer tracks processes from here on, so the shell's
    # daemon loops (parked on their feed stores) stay out of the count.
    env.sanitizer = SimSanitizer()

    def orphan():
        yield env.event()  # no producer: parks forever

    env.process(orphan(), name="orphan")
    env.run()
    snap = collect_card_metrics(driver).snapshot()
    assert snap["sim"]["stuck_at_drain"]["value"] == 1


def test_collect_includes_rdma_qp_counters():
    from repro.cluster import FpgaCluster
    from repro.core import ServiceConfig
    from repro import RdmaSg

    env = Environment()
    cluster = FpgaCluster(env, 2, services=ServiceConfig(en_memory=True, en_rdma=True))
    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2, qpn_a=1, qpn_b=2)
    payload = bytes(range(256))

    def main():
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )

    env.run(env.process(main()))
    snap = collect_card_metrics(cluster[0].driver).snapshot()
    assert snap["net"]["rdma_tx_packets"] > 0
    assert snap["net"]["qp"]["1"]["ops"] == 1
    assert snap["net"]["qp"]["1"]["bytes"] == len(payload)

    from repro.telemetry import collect_cluster_metrics

    fabric = collect_cluster_metrics(cluster).snapshot()
    assert fabric["net"]["switch_forwarded"] > 0
    # Node registries merged additively: both stacks' rx packets counted.
    assert fabric["net"]["rdma_rx_packets"] >= snap["net"]["rdma_rx_packets"]
