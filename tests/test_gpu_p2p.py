"""Tests for the GPU shared-virtual-memory extension (paper §6.1)."""

import pytest

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    MemLocation,
    Oper,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import PassThroughApp
from repro.driver import DriverError
from repro.mem import GpuConfig, GpuDevice
from repro.mem.tlb import PAGE_4K


def make_system():
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    gpu = GpuDevice(env, GpuConfig(memory_bytes=1 << 30))
    driver.attach_gpu(gpu)
    shell.load_app(0, PassThroughApp())
    return env, shell, driver, gpu


def test_gpu_page_size_must_match_shell():
    env = Environment()
    shell = Shell(env, ShellConfig())  # 2 MB MMU pages
    driver = Driver(env, shell)
    with pytest.raises(DriverError, match="page size"):
        driver.attach_gpu(GpuDevice(env, GpuConfig(page_size=PAGE_4K)))


def test_gpu_alloc_without_gpu_rejected():
    env = Environment()
    shell = Shell(env, ShellConfig())
    driver = Driver(env, shell)
    driver.open(1, 0)
    env.process(driver.gpu_alloc(1, 4096))
    with pytest.raises(DriverError, match="no GPU"):
        env.run()


def test_gpu_buffer_mapped_as_gpu_location():
    env, shell, driver, gpu = make_system()
    ct = CThread(driver, 0, pid=1)

    def main():
        alloc = yield from ct.gpu_alloc(4096)
        return alloc

    alloc = env.run(env.process(main()))
    entry = driver.processes[1].page_table.walk(alloc.vaddr)
    assert entry.location is MemLocation.GPU
    assert entry.gpu_paddr is not None
    assert entry.host_paddr is None


def test_p2p_read_bypasses_host():
    """vFPGA reads a GPU buffer: P2P traffic, zero host H2C bytes."""
    env, shell, driver, gpu = make_system()
    ct = CThread(driver, 0, pid=1)
    payload = bytes(range(256)) * 32

    def main():
        src = yield from ct.gpu_alloc(len(payload))
        dst = yield from ct.get_mem(len(payload))
        ct.gpu_write_buffer(src.vaddr, payload)
        h2c_before = shell.static.xdma.link.h2c_bytes
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=len(payload),
                                   dst_addr=dst.vaddr, dst_len=len(payload)))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        return ct.read_buffer(dst.vaddr, len(payload)), shell.static.xdma.link.h2c_bytes - h2c_before

    data, h2c_delta = env.run(env.process(main()))
    assert data == payload
    assert h2c_delta == 0  # source never crossed the host link
    assert gpu.bytes_read == len(payload)


def test_p2p_write_into_gpu_memory():
    """vFPGA output lands directly in GPU memory."""
    env, shell, driver, gpu = make_system()
    ct = CThread(driver, 0, pid=1)
    payload = (b"fpga->gpu direct " * 241)[:4096]

    def main():
        src = yield from ct.get_mem(4096)
        dst = yield from ct.gpu_alloc(4096)
        ct.write_buffer(src.vaddr, payload)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                   dst_addr=dst.vaddr, dst_len=4096))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        return ct.gpu_read_buffer(dst.vaddr, len(payload))

    assert env.run(env.process(main())) == payload
    assert gpu.bytes_written >= len(payload)


def test_gpu_to_gpu_through_kernel():
    env, shell, driver, gpu = make_system()
    ct = CThread(driver, 0, pid=1)
    payload = bytes(reversed(range(256))) * 16

    def main():
        src = yield from ct.gpu_alloc(4096)
        dst = yield from ct.gpu_alloc(4096)
        ct.gpu_write_buffer(src.vaddr, payload)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=4096,
                                   dst_addr=dst.vaddr, dst_len=4096))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        return ct.gpu_read_buffer(dst.vaddr, len(payload))

    assert env.run(env.process(main())) == payload


def test_gpu_migration_to_host():
    """LOCAL_SYNC pulls a GPU page back to a host frame."""
    env, shell, driver, gpu = make_system()
    driver.open(1, 0)

    def main():
        alloc = yield from driver.gpu_alloc(1, 4096)
        driver.gpu_write_buffer(1, alloc.vaddr, b"from the gpu")
        entry = driver.processes[1].page_table.walk(alloc.vaddr)
        # Host frame does not exist yet: allocate one by migrating.
        entry.host_paddr = driver._host_frames[alloc.page_size].allocate() + \
            driver._host_base[alloc.page_size]
        yield from driver.sync(1, alloc.vaddr, 4096)
        return driver.read_buffer(1, alloc.vaddr, 12), entry.location

    data, location = env.run(env.process(main()))
    assert data == b"from the gpu"
    assert location is MemLocation.HOST


def test_p2p_bandwidth_below_host_dma():
    cfg = GpuConfig()
    assert cfg.p2p_bandwidth < 12.0
