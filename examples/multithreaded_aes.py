#!/usr/bin/env python3
"""Hardware multi-threading: AES CBC with cThreads (paper §9.5, Fig 10).

CBC encryption chains every 128-bit block on the previous ciphertext, so
a single stream keeps just 1 of the AES core's 10 pipeline stages busy.
This example launches 1..10 cThreads against the *same* vFPGA — each
thread gets its own parallel host stream (AXI TID) — and shows throughput
scaling almost linearly until the pipeline is full.

Run:  python examples/multithreaded_aes.py
"""

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
    VFpgaConfig,
)
from repro.apps import AesCbcApp
from repro.core import MoverConfig
from repro.sim import AllOf

MESSAGE_KB = 32
MESSAGES_PER_THREAD = 6
KEY = 0x6167717A7A767668  # the key from the paper's Code 1


def run_with_threads(nthreads: int) -> float:
    env = Environment()
    shell = Shell(
        env,
        ShellConfig(
            num_vfpgas=1,
            # Timing-only data movement: we measure throughput here;
            # see tests/test_shell_integration.py for ciphertext checks.
            services=ServiceConfig(mover=MoverConfig(carry_data=False)),
            vfpga=VFpgaConfig(num_host_streams=10),
        ),
    )
    driver = Driver(env, shell)
    shell.load_app(0, AesCbcApp(num_streams=10))
    moved = [0]

    def client(thread_id: int):
        # One cThread per software thread, all on vFPGA 0, each using
        # its own parallel stream (stream_dest == AXI TID).
        ct = CThread(driver, 0, pid=1000 + thread_id, stream_dest=thread_id)
        yield from ct.set_csr(KEY, 0)  # encryption key (paper Code 1)
        size = MESSAGE_KB * 1024
        src = yield from ct.get_mem(size)
        dst = yield from ct.get_mem(size)
        for _ in range(MESSAGES_PER_THREAD):
            sg = SgEntry(
                local=LocalSg(
                    src_addr=src.vaddr, src_len=size,
                    dst_addr=dst.vaddr, dst_len=size,
                    src_dest=thread_id, dst_dest=thread_id,
                )
            )
            yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
            moved[0] += size

    procs = [env.process(client(t)) for t in range(nthreads)]
    env.run(AllOf(env, procs))
    return moved[0] / env.now * 1000.0  # MB/s


def main() -> None:
    print(f"AES CBC, {MESSAGE_KB} KB messages, 10-stage pipeline")
    print(f"{'threads':>8}  {'MB/s':>8}  {'speedup':>8}  pipeline")
    baseline = None
    for nthreads in (1, 2, 4, 6, 8, 10):
        mbps = run_with_threads(nthreads)
        baseline = baseline or mbps
        bar = "#" * round(10 * mbps / (baseline * 10))
        print(f"{nthreads:>8}  {mbps:>8.0f}  {mbps / baseline:>7.2f}x  [{bar:<10}]")
    print("\nEach added cThread fills another idle pipeline stage (Figure 9);")
    print("throughput scales ~linearly to the pipeline depth of 10.")


if __name__ == "__main__":
    main()
