#!/usr/bin/env python3
"""Rolling upgrade: re-program a 4-node AES cluster under live traffic.

Four simulated FPGA nodes each run an :class:`~repro.api.AppScheduler`
serving AES-ECB requests.  While six closed-loop clients keep the
cluster busy, the orchestrator walks the nodes one at a time:

1. ``drain_node`` live-migrates every tenant off the node — pre-copy
   over RDMA, a short stop-and-copy pause, checkpoint restore on the
   destination, and an idempotent-replay queue transplant;
2. the node "reboots" (``crash_node``/``restore_node``) and its shell
   is re-programmed from the ICAP bitstream cache;
3. the heartbeat monitor watches it leave and rejoin, and the cluster
   rebalances tenants back across the fleet.

The output shows the per-migration pause each tenant observed (the only
time its region was quiesced), the admin audit trail with reasons, and
the proof that matters: every request submitted during the upgrade
completed exactly once.

Run:  python examples/rolling_upgrade.py
"""

from repro import CThread
from repro.api import AppScheduler
from repro.apps import AesEcbApp
from repro.cluster import FpgaCluster
from repro.core import ServiceConfig
from repro.health import (
    AdmissionError,
    ClusterHealthConfig,
    ClusterMonitor,
    NodeDownError,
    QuarantinedError,
)
from repro.mem import PAGE_4K, AllocType, MmuConfig, TlbConfig
from repro.migrate import LiveMigrator
from repro.net import RdmaConfig
from repro.sim import Environment
from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services

NODES = 4
CLIENTS = 6
REQUESTS = 15


def main():
    env = Environment()
    cluster = FpgaCluster(
        env, NODES,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_4K)),
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    monitor = ClusterMonitor(cluster, ClusterHealthConfig(interval_ns=50_000.0))
    migrator = LiveMigrator(cluster)

    flow = BuildFlow("u55c")
    schedulers = []
    for node in cluster.nodes:
        checkpoint = LockedShellCheckpoint(
            "u55c", node.shell.config.services, node.shell.shell_id,
            sum(m.luts for m in modules_for_services(node.shell.config.services)),
        )
        scheduler = AppScheduler(node.driver)
        scheduler.register(
            "aes", flow.app_flow(checkpoint, ["aes_ecb"]).bitstream,
            AesEcbApp, idempotent=True,
        )
        schedulers.append(scheduler)

    # Long-lived tenants with pinned state: two pages of data, a
    # registered MR and an undrained ring descriptor each.  Their bytes
    # must survive every forced move of the upgrade, unchanged.
    tenants = {}

    def seed_tenant(pid, node):
        from repro.driver.ringbuf import RingOp, RingOpcode

        thread = CThread(cluster[node].driver, 0, pid=pid)
        buf = yield from thread.get_mem(2 * PAGE_4K, alloc_type=AllocType.REG)
        image = bytes((pid + i) % 256 for i in range(2 * PAGE_4K))
        thread.write_buffer(buf.vaddr, image)
        thread.setup_rings(8)
        mr = yield from thread.register_mr(buf.vaddr, 2 * PAGE_4K)
        cluster[node].driver.ring_post(
            pid, RingOp(opcode=RingOpcode.READ, mr_key=mr.key, length=PAGE_4K)
        )
        tenants[pid] = (buf.vaddr, image)

    for pid, node in ((201, 1), (202, 2), (203, 3)):
        env.run(env.process(seed_tenant(pid, node)))

    completed = []

    def body(tag):
        def run(app):
            yield env.timeout(2_000.0)  # AES service time per request
            return tag
        return run

    def client(cid):
        for i in range(REQUESTS):
            tag = f"c{cid}-r{i}"
            while True:
                live = [s for s in schedulers if not s.driver.node_down]
                target = min(
                    live, key=lambda s: (len(s._queue), s.driver.node_index)
                )
                try:
                    assert (yield from target.submit("aes", body(tag))) == tag
                    completed.append(tag)
                    break
                except (NodeDownError, AdmissionError, QuarantinedError):
                    yield env.timeout(10_000.0)  # node went down under us
            yield env.timeout(5_000.0)

    def admin():
        # Let the first partial reconfigurations land so every node's
        # region is warm, then upgrade the fleet one node at a time.
        yield env.timeout(40_000_000.0)
        print(f"[{env.now/1e6:7.2f} ms] rolling upgrade starts")
        summary = yield from cluster.rolling_upgrade(reason="fw-2.1")
        for row in summary:
            print(f"[{env.now/1e6:7.2f} ms]   node {row['node']}: "
                  f"{row['migrated']} tenant(s) moved, "
                  f"{row['regions']} region(s) re-programmed")

    for cid in range(CLIENTS):
        env.process(client(cid))
    env.process(admin())
    env.run(until=400_000_000.0)
    monitor.stop()
    env.run()  # drains: nothing parked, no live channels

    print()
    print("per-tenant migration pauses (stop-and-copy windows):")
    for record in migrator.records:
        print(f"  pid {record.pid}: node {record.src} -> {record.dst}  "
              f"pause {record.pause_ns/1e3:6.1f} us  ({record.result})")

    print()
    print("admin audit trail:")
    for time_ns, kind, node, reason in cluster.admin_log:
        note = f"  ({reason})" if reason else ""
        print(f"  {time_ns/1e6:7.2f} ms  {kind:14s}  node {node}{note}")

    print()
    print("tenant state after the upgrade:")
    for pid, (vaddr, image) in tenants.items():
        home = cluster.placements[pid]
        thread = CThread.attach(cluster[home].driver, pid)
        intact = thread.read_buffer(vaddr, len(image)) == image
        assert intact, f"tenant {pid} memory corrupted"
        print(f"  pid {pid}: lives on node {home}, "
              f"{len(image)} bytes intact, MR + ring restored")

    print()
    total = CLIENTS * REQUESTS
    assert len(completed) == total, f"lost requests: {len(completed)}/{total}"
    assert len(set(completed)) == total, "duplicated requests"
    assert all(node.shell_version == 1 for node in cluster.nodes)
    print(f"exactly-once: {len(completed)}/{total} requests completed, "
          f"0 lost, 0 duplicated")
    print(f"queue transplants: {migrator.queue_transplants}, "
          f"replays on destination: {migrator.replays}")
    print(f"all {NODES} nodes now at shell_version=1")
    print("done: simulation drained cleanly")


if __name__ == "__main__":
    main()
