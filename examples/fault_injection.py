#!/usr/bin/env python3
"""Fault injection: a lossy fabric, a failed reconfiguration, a clean run.

Builds a two-node cluster, arms a seeded :class:`~repro.FaultPlan` that
drops 5% of frames, replays 2% of PCIe transfers and fails the first ICAP
programming with a CRC error — then runs a partial reconfiguration and an
RDMA WRITE through it.  The reliability paths do their job: the driver
rolls back and retries the reconfiguration, RoCE go-back-N retransmits
the lost frames, and the payload arrives byte-exact.  Everything is
reproducible from ``(seed, plan)``; change the seed and the same story
plays out with different casualties.

Run:  python examples/fault_injection.py
"""

from repro import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    Environment,
    Oper,
    RdmaSg,
    SgEntry,
)
from repro.cluster import FpgaCluster
from repro.core import ServiceConfig, UserApp
from repro.driver import card_report, format_report
from repro.net import RdmaConfig
from repro.synth.flow import BuildFlow


class NopApp(UserApp):
    name = "hll"  # one of the synthesizable model kernels

    def run(self, vfpga):
        yield vfpga.env.timeout(0)


def main() -> None:
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )

    # The fault plan: every rule draws from its own seeded RNG substream,
    # so the run is deterministic and sites never perturb each other.
    plan = FaultPlan(
        seed=2025,
        rules=[
            FaultRule(site="net.drop", probability=0.05),
            FaultRule(site="pcie.replay", probability=0.02),
            FaultRule(site="icap.crc", at_events=(0,)),  # first program fails
        ],
    )
    print(f"plan: {plan.describe()}\n")
    injector = FaultInjector(plan).arm_cluster(cluster)

    node = cluster[0]
    flow = BuildFlow()
    checkpoint = flow.shell_flow(node.shell.config.services, ["hll"]).checkpoint
    bitstream = flow.app_flow(checkpoint, ["hll"]).bitstream
    app = NopApp()

    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2, qpn_a=1, qpn_b=2)
    payload = bytes(i % 251 for i in range(256_000))

    def scenario():
        # 1. Reconfigure vFPGA 0.  The injected CRC failure aborts the
        #    first ICAP program; the shell rolls the region back and the
        #    driver retries with exponential backoff until it sticks.
        yield env.process(node.driver.reconfigure_app(bitstream, 0, app, cached=True))
        print(f"[{env.now/1e3:10.1f} us] reconfiguration complete "
              f"(crc_failures={node.shell.static.icap.crc_failures}, "
              f"retries={node.driver.reconfig_retries})")

        # 2. Push 256 KB over RDMA through the 5%-lossy switch.  RoCE
        #    go-back-N retransmission makes the loss invisible.
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        received = thread_b.read_buffer(dst.vaddr, len(payload))
        stats = node.shell.dynamic.rdma.stats
        print(f"[{env.now/1e3:10.1f} us] RDMA WRITE done: "
              f"{len(received)} bytes, byte-exact={received == payload}, "
              f"frames dropped={cluster.switch.dropped}, "
              f"retransmissions={stats['retransmissions']}")
        assert received == payload

    env.run(env.process(scenario()))

    print(f"\ninjected faults: {injector.summary()}")
    print("\ncard report (faults section):")
    report = card_report(node.driver)
    for line in format_report({"faults": report["faults"]}).splitlines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
