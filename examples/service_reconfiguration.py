#!/usr/bin/env python3
"""Run-time service reconfiguration: swap TCP/IP for RDMA (Requirement 1).

Paper §2.2: "realistic workloads are dynamic in nature and reconfiguring
the services (e.g., switching from TCP/IP to RDMA ...) should not require
to reboot the FPGA, thereby interrupting service."

Two nodes start with the TCP/IP offload stack and move a buffer over a
real TCP connection (handshake, MSS segmentation, acks).  Both shells are
then reconfigured **at run time** — services and applications together —
to the RDMA configuration, and the same buffer moves again as a one-sided
RDMA WRITE.  The swap takes well under a second; a Coyote-v1-style shell
would have needed a full device reflash (~a minute, device offline).

Run:  python examples/service_reconfiguration.py
"""

from repro import (
    CThread,
    Driver,
    Environment,
    Oper,
    RdmaSg,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.net import MacAddress, Switch
from repro.synth import BuildFlow

PAYLOAD = bytes(range(256)) * 256  # 64 KB

TCP_SERVICES = ServiceConfig(en_memory=False, en_tcp=True)
RDMA_SERVICES = ServiceConfig(en_memory=True, en_rdma=True)


def main() -> None:
    env = Environment()
    switch = Switch(env)
    mac_a, mac_b = MacAddress(0x02_0000_0B01), MacAddress(0x02_0000_0B02)
    shell_a = Shell(env, ShellConfig(num_vfpgas=1, services=TCP_SERVICES),
                    switch=switch, mac=mac_a, ip=0x0A000001)
    shell_b = Shell(env, ShellConfig(num_vfpgas=1, services=TCP_SERVICES),
                    switch=switch, mac=mac_b, ip=0x0A000002)
    driver_a, driver_b = Driver(env, shell_a), Driver(env, shell_b)
    flow = BuildFlow("u55c")
    rdma_bitstream = flow.shell_flow(RDMA_SERVICES, []).bitstream

    def program():
        # ---- phase 1: TCP/IP service --------------------------------------
        print(f"[{env.now / 1e6:9.2f} ms] shells up with services "
              f"{sorted(shell_a.config.service_names)}")
        shell_b.dynamic.tcp.listen(80)

        def tcp_server():
            conn = yield from shell_b.dynamic.tcp.accept(80)
            data = yield from conn.recv(len(PAYLOAD))
            assert data == PAYLOAD

        server = env.process(tcp_server())
        start = env.now
        conn = yield from shell_a.dynamic.tcp.connect(mac_b, 0x0A000002, 80, 5000)
        yield from conn.send(PAYLOAD)
        yield server
        tcp_gbps = len(PAYLOAD) / (env.now - start)
        print(f"[{env.now / 1e6:9.2f} ms] moved {len(PAYLOAD) // 1024} KB over "
              f"TCP: {tcp_gbps:.2f} GB/s "
              f"({shell_a.dynamic.tcp.stats['tx']} segments)")

        # ---- phase 2: swap the service layer at run time -----------------
        swap_start = env.now
        for driver in (driver_a, driver_b):
            yield env.process(
                driver.reconfigure_shell(rdma_bitstream, RDMA_SERVICES)
            )
        swap_ms = (env.now - swap_start) / 1e6
        print(f"[{env.now / 1e6:9.2f} ms] both shells reconfigured TCP -> RDMA "
              f"in {swap_ms:.0f} ms total (device stayed online)")
        print(f"              services now {sorted(shell_a.config.service_names)}")
        vivado_s = shell_a.static.vivado.program_time_ns(
            flow.full_flow(RDMA_SERVICES, []).bitstream
        ) / 1e9
        print(f"              (a v1-style full reflash would take ~{vivado_s:.0f} s"
              f" per card, offline)")

        # ---- phase 3: the same transfer over RDMA -------------------------
        thread_a = CThread(driver_a, 0, pid=1)
        thread_b = CThread(driver_b, 0, pid=2)
        qp_a = thread_a.create_qp(1, psn=10)
        qp_b = thread_b.create_qp(2, psn=20)
        qp_a.connect(qp_b.local)
        qp_b.connect(qp_a.local)
        src = yield from thread_a.get_mem(len(PAYLOAD))
        dst = yield from thread_b.get_mem(len(PAYLOAD))
        thread_a.write_buffer(src.vaddr, PAYLOAD)
        start = env.now
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(PAYLOAD), qpn=1)),
        )
        rdma_gbps = len(PAYLOAD) / (env.now - start)
        assert thread_b.read_buffer(dst.vaddr, len(PAYLOAD)) == PAYLOAD
        print(f"[{env.now / 1e6:9.2f} ms] moved the same buffer over RDMA: "
              f"{rdma_gbps:.2f} GB/s (one-sided WRITE, zero receiver CPU)")

    env.run(env.process(program()))


if __name__ == "__main__":
    main()
