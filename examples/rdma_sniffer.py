#!/usr/bin/env python3
"""Two FPGAs over a switched 100G network: RDMA WRITE + traffic sniffer.

Reproduces the paper's networking story end to end (§6.2, §8):

* two Coyote v2 shells, each with the RoCE v2 (BALBOA) stack, attached to
  a cut-through switch;
* queue pairs exchanged out of band, one-sided RDMA WRITE moving a buffer
  from node A's virtual memory into node B's — translated through the
  MMUs and written to host memory through the static layer;
* the reconfigurable traffic-sniffer service on node A capturing the
  RoCE packets into HBM and exporting a standard PCAP file you could
  open in Wireshark.

Run:  python examples/rdma_sniffer.py
(writes rdma_capture.pcap into the working directory)
"""

from repro import (
    CThread,
    Driver,
    Environment,
    Oper,
    RdmaSg,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.net import MacAddress, RocePacket, Switch, read_pcap

PAYLOAD = bytes(range(256)) * 512  # 128 KB


def make_node(env, switch, mac, ip):
    config = ShellConfig(
        num_vfpgas=1,
        services=ServiceConfig(en_memory=True, en_rdma=True, en_sniffer=True),
    )
    shell = Shell(env, config, switch=switch, mac=MacAddress(mac), ip=ip)
    return shell, Driver(env, shell)


def main() -> None:
    env = Environment()
    switch = Switch(env)
    shell_a, driver_a = make_node(env, switch, 0x02_0000_0000_01, 0x0A000001)
    shell_b, driver_b = make_node(env, switch, 0x02_0000_0000_02, 0x0A000002)

    # cThreads on each node; QPs exchanged out of band (paper: via TCP).
    thread_a = CThread(driver_a, 0, pid=1)
    thread_b = CThread(driver_b, 0, pid=2)
    qp_a = thread_a.create_qp(qpn=1, psn=100)
    qp_b = thread_b.create_qp(qpn=2, psn=200)
    qp_a.connect(qp_b.local)
    qp_b.connect(qp_a.local)

    def program():
        src = yield from thread_a.get_mem(len(PAYLOAD))
        dst = yield from thread_b.get_mem(len(PAYLOAD))
        thread_a.write_buffer(src.vaddr, PAYLOAD)

        # Arm the sniffer on node A: capture TX+RX for all QPs.
        sniffer = shell_a.dynamic.sniffer
        sniffer.set_filter(rx=True, tx=True)
        sniffer.start()

        start = env.now
        sg = SgEntry(
            rdma=RdmaSg(
                local_addr=src.vaddr, remote_addr=dst.vaddr,
                len=len(PAYLOAD), qpn=1,
            )
        )
        yield from thread_a.invoke(Oper.REMOTE_RDMA_WRITE, sg)
        elapsed = env.now - start
        sniffer.stop()

        received = thread_b.read_buffer(dst.vaddr, len(PAYLOAD))
        assert received == PAYLOAD, "RDMA payload corrupted!"
        gbps = len(PAYLOAD) / elapsed
        print(f"RDMA WRITE of {len(PAYLOAD) // 1024} KB: {elapsed:,.0f} ns "
              f"({gbps:.2f} GB/s on the 100G link)")
        print(f"node A stack: {shell_a.dynamic.rdma.stats}")

        # Drain the capture into HBM, then convert to PCAP on the host.
        yield env.process(sniffer.drain())
        pcap_bytes = sniffer.to_pcap()
        with open("rdma_capture.pcap", "wb") as handle:
            handle.write(pcap_bytes)
        header, records = read_pcap(pcap_bytes)
        print(f"\nsniffer captured {len(records)} frames "
              f"-> rdma_capture.pcap (libpcap v{header['version'][0]}."
              f"{header['version'][1]}, Ethernet)")
        for record in records[:4]:
            print("  ", RocePacket.from_bytes(record.data).describe())
        print("   ...")

    env.run(env.process(program()))


if __name__ == "__main__":
    main()
