#!/usr/bin/env python3
"""FPGA <-> GPU peer-to-peer through the shared virtual memory (§6.1).

The paper highlights an external contribution that "extended the MMU to
include GPU memory and supports direct data movement between the FPGA and
a GPU" (as in FpgaNIC).  Here a GPU joins the shell's SVM: an AES vFPGA
encrypts a buffer that lives in GPU device memory and writes the
ciphertext back into GPU memory — both directions travel PCIe
peer-to-peer, and the host link carries **zero** payload bytes.

Run:  python examples/gpu_p2p.py
"""

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import AesEcbApp, aes_ecb_encrypt
from repro.mem import GpuDevice

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
SIZE = 64 * 1024


def main() -> None:
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    gpu = GpuDevice(env)
    driver.attach_gpu(gpu)  # the MMU extension: GPU pages join the SVM
    shell.load_app(0, AesEcbApp(num_streams=1))
    cthread = CThread(driver, 0, pid=7)

    def program():
        # Both buffers live in GPU device memory.
        src = yield from cthread.gpu_alloc(SIZE)
        dst = yield from cthread.gpu_alloc(SIZE)
        plaintext = bytes(range(256)) * (SIZE // 256)
        cthread.gpu_write_buffer(src.vaddr, plaintext)  # cudaMemcpy-style
        yield from cthread.set_csr(int.from_bytes(KEY[:8], "little"), 0)
        yield from cthread.set_csr(int.from_bytes(KEY[8:], "little"), 1)

        h2c_before = shell.static.xdma.link.h2c_bytes
        c2h_before = shell.static.xdma.link.c2h_bytes
        start = env.now
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=SIZE,
                                   dst_addr=dst.vaddr, dst_len=SIZE))
        yield from cthread.invoke(Oper.LOCAL_TRANSFER, sg)
        elapsed = env.now - start

        ciphertext = cthread.gpu_read_buffer(dst.vaddr, SIZE)
        assert ciphertext == aes_ecb_encrypt(plaintext, KEY), "bad ciphertext!"
        print(f"encrypted {SIZE // 1024} KB of GPU-resident data in "
              f"{elapsed:,.0f} ns ({SIZE / elapsed:.2f} GB/s over PCIe P2P)")
        print(f"GPU P2P traffic: {gpu.bytes_read:,} B read, "
              f"{gpu.bytes_written:,} B written")
        print(f"host-link payload bytes: h2c +{shell.static.xdma.link.h2c_bytes - h2c_before}, "
              f"c2h +{shell.static.xdma.link.c2h_bytes - c2h_before} "
              f"(the CPU and its DRAM never touched the data)")
        print("ciphertext verified against the FIPS-197 reference: OK")

    env.run(env.process(program()))


if __name__ == "__main__":
    main()
