#!/usr/bin/env python3
"""Neural-network inference from Python in a few lines (paper §9.7, Code 3).

The hls4ml-style flow: define a model, derive a config, convert it for
the ``CoyoteAccelerator`` backend, compile for bit-exact emulation, build
the IP, program a vFPGA through partial reconfiguration, and predict —
"as is commonly done on GPUs".  Also runs the PYNQ/Vitis baseline to show
the order-of-magnitude deployment-path gap of Figure 12.

Run:  python examples/nn_inference.py
"""

import numpy as np

from repro import Driver, Environment, ServiceConfig, Shell, ShellConfig
from repro.baselines import PynqVitisOverlay
from repro.ml import (
    CoyoteOverlay,
    config_from_model,
    convert_model,
    intrusion_detection_model,
)


def main() -> None:
    # Load the model and data (paper Code 3 uses a Keras .h5 + .npy).
    model = intrusion_detection_model()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2048, model.input_width))

    # Create the hls4ml model targeting the Coyote backend.
    hls_config = config_from_model(model)
    hls_model = convert_model(model, hls_config, backend="CoyoteAccelerator")

    # Compile and run software emulation.
    hls_model.compile()
    pred_emu = hls_model.predict(x)

    # Start "hardware synthesis".
    ip = hls_model.build()
    print(f"IP core: {ip.name}, II={ip.initiation_interval_cycles} cycles, "
          f"{ip.resources.dsps} DSPs, {ip.resources.brams} BRAMs")

    # Once done, create an overlay of the vFPGA and program the FPGA.
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False)))
    driver = Driver(env, shell)
    overlay = CoyoteOverlay(driver, hls_model)

    def deploy_and_predict():
        yield env.process(overlay.program_fpga())
        start = env.now
        pred_fpga = yield from overlay.predict(x, batch_size=1024)
        return pred_fpga, env.now - start

    pred_fpga, coyote_ns = env.run(env.process(deploy_and_predict()))
    assert np.array_equal(pred_fpga, pred_emu), "hardware != emulation!"
    print(f"\nCoyote v2:   {coyote_ns / 1e6:7.3f} ms for {len(x)} samples "
          f"({len(x) / (coyote_ns / 1e9):,.0f} samples/s)")

    # The PYNQ + Vitis baseline: copy-through-HBM + Python runtime.
    env_b = Environment()
    pynq = PynqVitisOverlay(env_b, ip)

    def baseline():
        start = env_b.now
        preds = yield from pynq.predict(x, batch_size=1024)
        return preds, env_b.now - start

    pred_pynq, pynq_ns = env_b.run(env_b.process(baseline()))
    assert np.array_equal(pred_pynq, pred_emu)
    print(f"PYNQ+Vitis:  {pynq_ns / 1e6:7.3f} ms "
          f"({len(x) / (pynq_ns / 1e9):,.0f} samples/s)")
    print(f"\nspeedup: {pynq_ns / coyote_ns:.1f}x — direct host streaming + "
          f"C++ runtime vs staging copies + Python control (Figure 12)")
    agreement = float(np.mean(
        np.argmax(pred_fpga, axis=1)
        == np.argmax(model.predict_float(x), axis=1)
    ))
    print(f"fixed-point vs float argmax agreement: {agreement * 100:.1f}%")


if __name__ == "__main__":
    main()
