#!/usr/bin/env python3
"""FPGA-cluster collectives over RDMA (the paper's stated future work).

Four simulated FPGA nodes on one switch form a communicator over a full
queue-pair mesh.  The example runs:

* a binomial-tree **broadcast** of model weights from rank 0, and
* a bandwidth-optimal ring **allreduce** summing per-node gradient
  vectors — the pattern distributed training uses, and what the ACCL+
  collective engine the conclusion cites provides on real Coyote.

Run:  python examples/collective_allreduce.py
"""

import numpy as np

from repro.mem import SparseMemory
from repro.net import Cmac, CollectiveGroup, MacAddress, RdmaStack, Switch
from repro.sim import AllOf, Environment

NODES = 4
ELEMENTS = 4096  # int32 gradient vector length (divisible by NODES)


def make_cluster(env, n):
    switch = Switch(env)
    stacks = []
    for i in range(n):
        mac = MacAddress(0x02_0000_3000 + i)
        cmac = Cmac(env, name=f"fpga{i}")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, 0x0A000200 + i, name=f"fpga{i}")
        memory = SparseMemory(1 << 24)

        def read_local(vaddr, length, memory=memory):
            yield env.timeout(length / 12.0)
            return memory.read(vaddr, length)

        def write_local(vaddr, data, length, memory=memory):
            yield env.timeout(length / 12.0)
            if data is not None:
                memory.write(vaddr, data)

        stack.bind_memory(read_local, write_local)
        stacks.append(stack)
    return stacks


def main() -> None:
    env = Environment()
    stacks = make_cluster(env, NODES)
    group = CollectiveGroup(env, stacks)
    rng = np.random.default_rng(0)
    weights = rng.integers(0, 1000, size=ELEMENTS, dtype=np.uint32)
    gradients = [
        rng.integers(0, 100, size=ELEMENTS, dtype=np.uint32) for _ in range(NODES)
    ]
    expected_sum = sum(gradients).astype("<u4")
    results = {}

    def member(rank):
        # Phase 1: rank 0 broadcasts the weights to everyone.
        got = yield from group.broadcast(
            root=0, payload=weights.tobytes() if rank == 0 else None, rank=rank
        )
        assert np.array_equal(np.frombuffer(got, dtype="<u4"), weights)
        if rank == 0:
            results["bcast_done"] = env.now
        # Phase 2: everyone allreduces their local gradients.
        reduced = yield from group.allreduce(gradients[rank].tobytes(), rank)
        results[rank] = np.frombuffer(reduced, dtype="<u4")

    start = env.now
    procs = [env.process(member(r)) for r in range(NODES)]
    env.run(AllOf(env, procs))
    for rank in range(NODES):
        assert np.array_equal(results[rank], expected_sum), rank

    nbytes = ELEMENTS * 4
    bcast_us = results["bcast_done"] / 1e3
    total_us = env.now / 1e3
    print(f"{NODES} FPGAs, {nbytes // 1024} KB vectors over 100G RoCE v2")
    print(f"  broadcast (binomial tree): weights on all ranks by {bcast_us:,.1f} us")
    print(f"  allreduce (ring):          identical sums on all ranks by "
          f"{total_us:,.1f} us")
    moved = sum(s.stats['tx_packets'] for s in stacks)
    print(f"  cluster-wide packets: {moved} "
          f"(ring moves ~2(n-1)/n of the buffer per node, not n-1 copies)")
    print("  every rank verified bit-identical results: OK")


if __name__ == "__main__":
    main()
