#!/usr/bin/env python3
"""Quickstart: bring up a shell, load a kernel, move data through it.

Mirrors the paper's Code 1: create a cThread, allocate huge-page buffers
with ``getMem``, set a control register, and invoke a local transfer that
streams the source buffer through the vFPGA and back into the destination
buffer.

Run:  python examples/quickstart.py
"""

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import PassThroughApp


def main() -> None:
    # The simulated card: static layer + services + one vFPGA.
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)

    # Load user logic into vFPGA 0 (initial configuration).
    shell.load_app(0, PassThroughApp())

    # Create a cThread and assign it to vFPGA 0 (paper Code 1).
    cthread = CThread(driver, vfpga_id=0, pid=4242)

    def host_program():
        # Allocate 16 KB source & destination memory using huge pages;
        # getMem also adds the pages to the TLB.
        src = yield from cthread.get_mem(16 * 1024)
        dst = yield from cthread.get_mem(16 * 1024)

        # Some host-side processing on src.
        payload = b"Coyote v2 says hello from the FPGA! " * 445
        cthread.write_buffer(src.vaddr, payload)

        # Launch the kernel, specifying source and destination buffers.
        sg = SgEntry(
            local=LocalSg(
                src_addr=src.vaddr, src_len=len(payload),
                dst_addr=dst.vaddr, dst_len=len(payload),
            )
        )
        yield from cthread.invoke(Oper.LOCAL_TRANSFER, sg)

        result = cthread.read_buffer(dst.vaddr, len(payload))
        assert result == payload, "round trip corrupted data!"
        throughput = len(payload) / env.now  # bytes per ns == GB/s
        print(f"moved {len(payload)} bytes host->vFPGA->host in {env.now:,.0f} ns")
        print(f"effective throughput: {throughput:.2f} GB/s (host link ~12 GB/s)")
        print("data integrity: OK")

    env.run(env.process(host_program()))


if __name__ == "__main__":
    main()
