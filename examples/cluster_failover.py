#!/usr/bin/env python3
"""Cluster failover: a node dies mid-allreduce; the survivors carry on.

Four simulated FPGA nodes run a heartbeat failure detector
(:class:`~repro.health.ClusterMonitor`) and a fault-tolerant collective
communicator (:class:`~repro.net.CollectiveGroup`).  Mid-allreduce,
node 3 loses power: its switch port black-holes and every queue pair on
its RDMA stack is flushed.  The example then walks the full recovery
arc the NCCL communicator model prescribes:

1. every rank's collective aborts **symmetrically** with a typed
   :class:`~repro.net.CollectiveAbortError` — nobody hangs;
2. the heartbeat detector declares ``node_down`` (hard evidence: the
   survivors' own heartbeats toward node 3 hit retry exhaustion);
3. new work submitted to the dead node is rejected at the door with
   :class:`~repro.health.NodeDownError`;
4. ``rebuild([0, 1, 2])`` reforms the QP mesh over the survivors and
   the retried allreduce completes with the correct sum;
5. the node is restored, heartbeats re-arm, and ``node_up`` follows.

Run:  python examples/cluster_failover.py
"""

import numpy as np

from repro.cluster import FpgaCluster
from repro.core import ServiceConfig
from repro.health import ClusterHealthConfig, ClusterMonitor, health_section
from repro.net import CollectiveAbortError, RdmaConfig
from repro.sim import AllOf, Environment

NODES = 4
ELEMENTS = 48  # divisible into chunks for both 4 and 3 ranks


def gradient(rank):
    return np.full(ELEMENTS, rank + 1, dtype="<u4").tobytes()


def run_round(env, group, ranks, label):
    results, errors = {}, {}

    def member(rank):
        try:
            results[rank] = yield from group.allreduce(gradient(rank), rank)
        except CollectiveAbortError as exc:
            errors[rank] = exc

    procs = [env.process(member(r)) for r in ranks]
    env.run(AllOf(env, procs))
    print(f"[{env.now/1e3:9.1f} us] {label}: "
          f"{len(results)} completed, {len(errors)} aborted")
    return results, errors


def main():
    env = Environment()
    cluster = FpgaCluster(
        env, NODES,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    monitor = ClusterMonitor(
        cluster, ClusterHealthConfig(interval_ns=50_000.0)
    )
    group = cluster.collective_group(timeout_ns=5_000_000.0)

    # Round 1: all four ranks, clean. Sum is 1+2+3+4 = 10 per element.
    results, _ = run_round(env, group, range(NODES), "clean allreduce")
    assert all(
        np.frombuffer(r, dtype="<u4")[0] == 10 for r in results.values()
    )

    # Round 2: node 3 loses power 2 us into the collective.
    def killer():
        yield env.timeout(2_000.0)
        print(f"[{env.now/1e3:9.1f} us] node 3 loses power")
        cluster.crash_node(3)

    env.process(killer())
    results, errors = run_round(env, group, range(NODES), "crashed allreduce")
    assert not results and sorted(errors) == [0, 1, 2, 3]
    print(f"               symmetric abort: rank 0 saw {errors[0]}")

    # The detector converges on the crash (survivor heartbeats flush).
    env.run(until=env.now + 1_000_000.0)
    print(f"[{env.now/1e3:9.1f} us] detector says down: {monitor.down_nodes}")
    assert monitor.down_nodes == [3]

    # Survivors rebuild and retry: 1 + 2 + 3 = 6 per element.
    group = group.rebuild([0, 1, 2])
    results, errors = run_round(env, group, range(3), "rebuilt allreduce")
    assert not errors
    assert all(
        np.frombuffer(r, dtype="<u4")[0] == 6 for r in results.values()
    )

    # Power is restored; heartbeats re-arm and node_up follows.
    cluster.restore_node(3)
    env.run(until=env.now + 1_000_000.0)
    print(f"[{env.now/1e3:9.1f} us] detector says down: {monitor.down_nodes}")
    assert monitor.down_nodes == []

    section = health_section(cluster[0].driver)["cluster"]
    print("cluster health events:")
    for event in section["events"]:
        reason = f"  ({event['reason']})" if event["reason"] else ""
        print(f"  {event['time_ns']/1e3:9.1f} us  {event['kind']}  "
              f"node {event['node']}{reason}")
    print(f"lifetime stats: {group.stats}")

    monitor.stop()
    env.run()  # drains: symmetric abort left nothing parked
    print("done: simulation drained cleanly")


if __name__ == "__main__":
    main()
