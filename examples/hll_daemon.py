#!/usr/bin/env python3
"""On-demand kernel loading: HyperLogLog as a background daemon (§9.6).

The vFPGA starts empty.  When a client submits a cardinality-estimation
request, the daemon loads the HLL kernel through partial reconfiguration
(the paper measures 57 ms for this), runs the estimation, and returns the
result via a user interrupt.  Subsequent requests reuse the loaded kernel;
a different request type (AES) evicts it, demonstrating run-time sharing
of one region between workloads.

Run:  python examples/hll_daemon.py
"""

import struct

import numpy as np

from repro import (
    CThread,
    Driver,
    Environment,
    LocalSg,
    Oper,
    ServiceConfig,
    SgEntry,
    Shell,
    ShellConfig,
)
from repro.apps import AesEcbApp, HllApp
from repro.sim import Tracer
from repro.synth import BuildFlow, LockedShellCheckpoint, modules_for_services
from repro.telemetry import SpanRecorder


def make_app_bitstream(shell, app_names):
    """App-flow build against the live shell's locked checkpoint."""
    flow = BuildFlow(shell.config.device, num_vfpgas=shell.config.num_vfpgas)
    checkpoint = LockedShellCheckpoint(
        device=shell.config.device,
        services=shell.config.services,
        shell_id=shell.shell_id,
        used_luts=sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    return flow.app_flow(checkpoint, app_names).bitstream


def main() -> None:
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False)))
    driver = Driver(env, shell)
    hll_bitstream = make_app_bitstream(shell, ["hll"])
    aes_bitstream = make_app_bitstream(shell, ["aes_ecb"])
    loaded = {"kernel": None}
    # A long-lived daemon must not accumulate trace records forever: keep
    # only the most recent ones in a ring buffer and count the rest.
    tracer = Tracer(max_records=16)
    spans = SpanRecorder(env, tracer=tracer)

    def ensure_kernel(name, bitstream, app_factory, parent=None):
        """Daemon logic: PR the kernel in only when the request needs it."""
        if loaded["kernel"] == name:
            print(f"  [{env.now / 1e6:8.2f} ms] {name} already resident")
            return
        start = env.now
        span = spans.begin("daemon", f"load:{name}", parent=parent)
        # Daemon mode: bitstreams are kept in memory (paper §9.3/§9.6),
        # so the load pays only copy-to-kernel + ICAP (~57 ms for HLL).
        yield env.process(
            driver.reconfigure_app(bitstream, 0, app_factory(), cached=True)
        )
        loaded["kernel"] = name
        spans.finish(span)
        print(f"  [{env.now / 1e6:8.2f} ms] loaded {name} via partial "
              f"reconfiguration in {(env.now - start) / 1e6:.1f} ms")

    def hll_request(ct, values):
        span = spans.begin("daemon", "hll_request")
        yield env.process(ensure_kernel("hll", hll_bitstream, HllApp, parent=span))
        yield from ct.set_csr(1, 0)  # reset the sketch between requests
        payload = struct.pack(f"<{len(values)}I", *values)
        buf = yield from ct.get_mem(max(4096, len(payload)))
        ct.write_buffer(buf.vaddr, payload)
        yield from ct.invoke(
            Oper.LOCAL_READ, SgEntry(local=LocalSg(src_addr=buf.vaddr, src_len=len(payload)))
        )
        _ts, estimate = yield from ct.wait_interrupt()
        ct.free_mem(buf)
        spans.finish(span)
        return estimate

    def aes_request(ct, nbytes):
        span = spans.begin("daemon", "aes_request")
        yield env.process(
            ensure_kernel("aes_ecb", aes_bitstream, AesEcbApp, parent=span)
        )
        src = yield from ct.get_mem(nbytes)
        dst = yield from ct.get_mem(nbytes)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=nbytes,
                                   dst_addr=dst.vaddr, dst_len=nbytes))
        yield from ct.invoke(Oper.LOCAL_TRANSFER, sg)
        ct.free_mem(src)
        ct.free_mem(dst)
        spans.finish(span)

    def clients():
        ct = CThread(driver, 0, pid=11)
        rng = np.random.default_rng(1)
        # Request 1: estimate cardinality of 100k values with duplicates.
        values = rng.integers(0, 60_000, size=100_000, dtype=np.uint32)
        true_card = len(np.unique(values))
        estimate = yield env.process(hll_request(ct, values.tolist()))
        err = abs(estimate - true_card) / true_card * 100
        print(f"  request 1 (HLL): estimate {estimate:,} vs true {true_card:,} "
              f"({err:.1f}% error)")
        # Request 2: kernel already loaded, no reconfiguration.
        estimate2 = yield env.process(hll_request(ct, list(range(5000))))
        print(f"  request 2 (HLL): estimate {estimate2:,} vs true 5,000")
        # Request 3: a different workload evicts HLL.
        yield env.process(aes_request(ct, 64 * 1024))
        print("  request 3 (AES): 64 KB encrypted")
        # Request 4: HLL must be re-loaded on demand.
        estimate3 = yield env.process(hll_request(ct, list(range(2000))))
        print(f"  request 4 (HLL): estimate {estimate3:,} vs true 2,000")
        print(f"\ntotal app reconfigurations: {shell.app_reconfigs}")

    print("on-demand kernel daemon (vFPGA 0 starts empty):")
    env.run(env.process(clients()))
    print("\nper-component span time (request vs reconfiguration):")
    print(spans.format())
    print(f"trace ring buffer: {len(tracer.records)} kept, "
          f"{tracer.dropped} dropped")


if __name__ == "__main__":
    main()
