"""Figure 7(b): synthesis/implementation time, shell flow vs app flow.

Three configurations of increasing complexity; the nested (app) flow must
save 15-20% of the build time by linking against the locked shell.
"""

from conftest import one_shot

from repro.experiments import run_fig7b


def test_fig7b_app_flow_savings(benchmark, report):
    result = one_shot(benchmark, run_fig7b)
    report(result)
    for row in result.rows:
        assert 13.0 <= row["savings_pct"] <= 22.0, row
        assert row["app_flow_min"] < row["shell_flow_min"]


def test_fig7b_complexity_ordering(report):
    result = run_fig7b()
    times = [row["shell_flow_min"] for row in result.rows]
    assert times == sorted(times)
    # RDMA config lands in the "4-6 hours" regime the paper quotes for
    # the full network + encryption build (here: >2.5 h on the U250).
    assert times[-1] > 150
