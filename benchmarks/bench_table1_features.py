"""Table 1: feature comparison of FPGA shells.

Regenerates the matrix and asserts the paper's headline claims about
Coyote v2's position in it.
"""

from conftest import one_shot

from repro.baselines import FEATURE_COLUMNS, FEATURE_MATRIX, Support, coyote_v2_row
from repro.experiments import run_table1


def test_table1_feature_matrix(benchmark, report):
    result = one_shot(benchmark, run_table1)
    report(result)
    assert len(result.rows) == len(FEATURE_MATRIX) == 15


def test_coyote_v2_supports_every_column():
    row = coyote_v2_row()
    for column in FEATURE_COLUMNS:
        assert row.supports(column) is Support.YES, column
    assert row.app_interface == "Host, card, net (multiple)"


def test_coyote_v2_is_only_shell_with_multithreading():
    with_mt = [s.name for s in FEATURE_MATRIX if s.multi_threading is Support.YES]
    assert with_mt == ["Coyote v2"]


def test_coyote_v2_is_only_shell_with_service_reconfig():
    full = [s.name for s in FEATURE_MATRIX if s.service_reconfig is Support.YES]
    assert full == ["Coyote v2"]
