#!/usr/bin/env python
"""Chaos soak: the health-chaos scenario across many seeds, time-boxed.

CI's ``chaos-soak`` job runs this to catch rare-schedule bugs the fixed
test seeds miss: every seed arms ``app.hang`` + ``net.drop`` against a
two-node cluster (compute on one region, RDMA across the lossy switch)
and checks the safety invariants the unit tests assert for a single
seed.  A per-seed wall-clock alarm converts any simulation livelock into
a loud failure instead of a hung CI job.

Usage::

    python benchmarks/chaos_soak.py --seeds 25 --timeout 60
"""

from __future__ import annotations

import argparse
import signal
import sys
import time

sys.path.insert(0, "src")

import numpy as np  # noqa: E402

from repro import Environment, Oper, RdmaSg, SgEntry  # noqa: E402
from repro.apps import PassThroughApp  # noqa: E402
from repro.cluster import FpgaCluster  # noqa: E402
from repro.core import LocalSg, ServiceConfig  # noqa: E402
from repro.driver.report import card_report  # noqa: E402
from repro.faults import (  # noqa: E402
    APP_HANG,
    LINK_FLAP,
    NET_DROP,
    NET_PARTITION,
    NODE_CRASH,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.health import (  # noqa: E402
    ClusterHealthConfig,
    ClusterMonitor,
    DecoupledError,
    HealthConfig,
    HealthMonitor,
    QuarantinedError,
    RecoveredError,
)
from repro.net import CollectiveAbortError, RdmaConfig  # noqa: E402
from repro.sim import AllOf  # noqa: E402


class SoakTimeout(Exception):
    """A single seed blew its wall-clock budget (likely a livelock)."""


def _alarm(signum, frame):
    raise SoakTimeout()


def run_seed(seed: int) -> dict:
    """One chaos scenario; returns a result row or raises on violation."""
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    node = cluster[0]
    HealthMonitor(node.driver, HealthConfig(
        poll_interval_ns=5_000.0, deadline_ns=50_000.0, drain_ns=10_000.0,
    ))
    victim = node.shell.vfpgas[0]
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=APP_HANG, at_events=(seed % 4,),
                      match=lambda v: v is victim),
            FaultRule(site=NET_DROP, probability=0.02 + (seed % 5) / 100.0),
        ],
    )
    FaultInjector(plan).arm_cluster(cluster)
    node.shell.load_app(0, PassThroughApp())
    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2,
                                             qpn_a=1, qpn_b=2)
    payload = bytes((seed + i) % 256 for i in range(16_384))
    attempts = []

    def local_client():
        src = yield from thread_a.get_mem(1 << 13)
        dst = yield from thread_a.get_mem(1 << 13)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 13,
                                   dst_addr=dst.vaddr, dst_len=1 << 13))
        for _ in range(20):
            try:
                yield from thread_a.invoke(Oper.LOCAL_TRANSFER, sg)
                attempts.append("ok")
            except (RecoveredError, DecoupledError):
                attempts.append("recovered")
            except QuarantinedError:
                attempts.append("quarantined")
                return
            if attempts.count("ok") >= 3:
                return
            yield env.timeout(50_000.0)

    def rdma_client():
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        return thread_b.read_buffer(dst.vaddr, len(payload))

    local = env.process(local_client())
    rdma = env.process(rdma_client())
    env.run(AllOf(env, [local, rdma]))
    env.run()  # must quiesce: parked monitor + parked retransmit timers

    # --- invariants -----------------------------------------------------
    if rdma.value != payload:
        raise AssertionError(f"seed {seed}: RDMA payload corrupted")
    if attempts.count("ok") < 3 and "quarantined" not in attempts:
        raise AssertionError(f"seed {seed}: local client starved: {attempts}")
    for pid, ctx in node.driver.processes.items():
        if ctx.pending:
            raise AssertionError(f"seed {seed}: pid {pid} left pending work")
    health = card_report(node.driver)["health"]
    if health["card"] not in ("healthy", "degraded", "quarantined"):
        raise AssertionError(f"seed {seed}: bad card verdict {health['card']}")
    return {
        "seed": seed,
        "card": health["card"],
        "recoveries": node.driver.recovery.total_recoveries(),
        "attempts": len(attempts),
        "sim_ns": env.now,
    }


def run_cluster_seed(seed: int) -> dict:
    """Cluster soak: 4 nodes, seeded crash/flap/partition chaos, fault-
    tolerant allreduce loop.  Every failed round must abort symmetrically
    (no rank left parked — the final drain would livelock otherwise);
    after healing partitions and rebuilding over the survivors, at least
    one round must complete with the correct element-wise sum."""
    env = Environment()
    cluster = FpgaCluster(
        env, 4,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=NODE_CRASH, at_events=(120 + seed % 60,)),
            FaultRule(site=NET_PARTITION, at_events=(50 + seed % 25,)),
            FaultRule(site=LINK_FLAP, probability=(seed % 3) / 2000.0),
        ],
    )
    FaultInjector(plan).arm_cluster(cluster)
    monitor = ClusterMonitor(cluster, ClusterHealthConfig(interval_ns=50_000.0))
    group = cluster.collective_group(timeout_ns=5_000_000.0)
    members = list(range(4))  # node index per group rank

    def run_round(grp, count):
        """One allreduce over ``count`` ranks; returns (oks, errors)."""
        chunk = 12  # element count divides 2, 3 and 4 ranks
        results, errors = {}, {}

        def member(rank):
            payload = np.full(chunk, rank + 1, dtype="<u4").tobytes()
            try:
                results[rank] = yield from grp.allreduce(payload, rank=rank)
            except CollectiveAbortError as exc:
                errors[rank] = exc

        procs = [env.process(member(r)) for r in range(count)]
        env.run(AllOf(env, procs))
        return results, errors

    rounds_done = rounds_aborted = 0
    for _ in range(12):
        if rounds_done >= 3:
            break
        n = len(members)
        results, errors = run_round(group, n)
        if not errors:
            expected = np.full(12, n * (n + 1) // 2, dtype="<u4").tobytes()
            if any(results[r] != expected for r in range(n)):
                raise AssertionError(f"seed {seed}: allreduce sum wrong")
            rounds_done += 1
            continue
        # NCCL-style symmetric abort: every rank must have raised.
        if len(errors) != n or results:
            raise AssertionError(
                f"seed {seed}: asymmetric abort ({len(errors)}/{n} raised)"
            )
        rounds_aborted += 1
        cluster.switch.heal_all_partitions()
        survivors = [m for m in members if cluster.nodes[m].alive]
        if len(survivors) < 2:
            break
        ranks = [members.index(m) for m in survivors]
        group = group.rebuild(ranks)
        members = survivors
    if rounds_done < 1:
        raise AssertionError(f"seed {seed}: no allreduce round ever completed")
    monitor.stop()
    env.run()  # must quiesce: no parked rank, no live heartbeat loops
    return {
        "seed": seed,
        "members": len(members),
        "rounds": rounds_done,
        "aborts": rounds_aborted,
        "crashes": cluster.crashes,
        "flaps": cluster.switch.link_flaps,
        "partitions": cluster.switch.partitions_created,
        "sim_ns": env.now,
    }


def _soak(name, fn, seeds, timeout, render) -> int:
    failures = 0
    for seed in range(seeds):
        start = time.monotonic()
        signal.alarm(timeout)
        try:
            row = fn(seed)
        except SoakTimeout:
            failures += 1
            print(f"{name} seed {seed:4d}  TIMEOUT after {timeout}s "
                  "(simulation livelock?)", flush=True)
            continue
        except AssertionError as exc:
            failures += 1
            print(f"{name} seed {seed:4d}  FAIL  {exc}", flush=True)
            continue
        finally:
            signal.alarm(0)
        elapsed = time.monotonic() - start
        print(f"{name} seed {seed:4d}  ok  {render(row)} "
              f"sim={row['sim_ns']:.0f}ns wall={elapsed:.1f}s", flush=True)
    print(f"{name}: {seeds - failures}/{seeds} seeds clean", flush=True)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to soak (default 25)")
    parser.add_argument("--timeout", type=int, default=60,
                        help="wall-clock seconds allowed per seed")
    parser.add_argument("--skip-cluster", action="store_true",
                        help="run only the single-card health scenario")
    args = parser.parse_args(argv)

    signal.signal(signal.SIGALRM, _alarm)
    failures = _soak(
        "card", run_seed, args.seeds, args.timeout,
        lambda row: f"card={row['card']:10s} recoveries={row['recoveries']}",
    )
    if not args.skip_cluster:
        failures += _soak(
            "cluster", run_cluster_seed, args.seeds, args.timeout,
            lambda row: (
                f"members={row['members']} rounds={row['rounds']} "
                f"aborts={row['aborts']} crashes={row['crashes']} "
                f"flaps={row['flaps']} parts={row['partitions']}"
            ),
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
