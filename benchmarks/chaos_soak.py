#!/usr/bin/env python
"""Chaos soak: the health-chaos scenario across many seeds, time-boxed.

CI's ``chaos-soak`` job runs this to catch rare-schedule bugs the fixed
test seeds miss: every seed arms ``app.hang`` + ``net.drop`` against a
two-node cluster (compute on one region, RDMA across the lossy switch)
and checks the safety invariants the unit tests assert for a single
seed.  A per-seed wall-clock alarm converts any simulation livelock into
a loud failure instead of a hung CI job.

Usage::

    python benchmarks/chaos_soak.py --seeds 25 --timeout 60
"""

from __future__ import annotations

import argparse
import hashlib
import signal
import sys
import time

sys.path.insert(0, "src")

import numpy as np  # noqa: E402

from repro import CThread, Environment, Oper, RdmaSg, SgEntry  # noqa: E402
from repro.api import AppScheduler  # noqa: E402
from repro.apps import AesEcbApp, PassThroughApp  # noqa: E402
from repro.cluster import FpgaCluster  # noqa: E402
from repro.core import LocalSg, ServiceConfig  # noqa: E402
from repro.driver.report import card_report  # noqa: E402
from repro.driver.ringbuf import RingOp, RingOpcode  # noqa: E402
from repro.faults import (  # noqa: E402
    APP_HANG,
    LINK_FLAP,
    NET_DROP,
    NET_ECN_SUPPRESS,
    NET_PARTITION,
    NET_PAUSE_DROP,
    NODE_CRASH,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.faults.plan import MIGRATE_TRANSFER_DROP  # noqa: E402
from repro.health import (  # noqa: E402
    AdmissionError,
    ClusterHealthConfig,
    ClusterMonitor,
    DecoupledError,
    HealthConfig,
    HealthMonitor,
    NodeDownError,
    PfcStormError,
    QuarantinedError,
    RecoveredError,
)
from repro.mem import PAGE_4K, AllocType, MmuConfig, TlbConfig  # noqa: E402
from repro.migrate import LiveMigrator, TransferAbortedError  # noqa: E402
from repro.net import (  # noqa: E402
    Cmac,
    CollectiveAbortError,
    DcqcnConfig,
    MacAddress,
    RdmaConfig,
    RdmaStack,
    Switch,
    SwitchConfig,
    WrFlushError,
)
from repro.sim import AllOf  # noqa: E402
from repro.synth import (  # noqa: E402
    BuildFlow,
    LockedShellCheckpoint,
    modules_for_services,
)


class SoakTimeout(Exception):
    """A single seed blew its wall-clock budget (likely a livelock)."""


def _alarm(signum, frame):
    raise SoakTimeout()


def run_seed(seed: int) -> dict:
    """One chaos scenario; returns a result row or raises on violation."""
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    node = cluster[0]
    HealthMonitor(node.driver, HealthConfig(
        poll_interval_ns=5_000.0, deadline_ns=50_000.0, drain_ns=10_000.0,
    ))
    victim = node.shell.vfpgas[0]
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=APP_HANG, at_events=(seed % 4,),
                      match=lambda v: v is victim),
            FaultRule(site=NET_DROP, probability=0.02 + (seed % 5) / 100.0),
        ],
    )
    FaultInjector(plan).arm_cluster(cluster)
    node.shell.load_app(0, PassThroughApp())
    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2,
                                             qpn_a=1, qpn_b=2)
    payload = bytes((seed + i) % 256 for i in range(16_384))
    attempts = []

    def local_client():
        src = yield from thread_a.get_mem(1 << 13)
        dst = yield from thread_a.get_mem(1 << 13)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 13,
                                   dst_addr=dst.vaddr, dst_len=1 << 13))
        for _ in range(20):
            try:
                yield from thread_a.invoke(Oper.LOCAL_TRANSFER, sg)
                attempts.append("ok")
            except (RecoveredError, DecoupledError):
                attempts.append("recovered")
            except QuarantinedError:
                attempts.append("quarantined")
                return
            if attempts.count("ok") >= 3:
                return
            yield env.timeout(50_000.0)

    def rdma_client():
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        return thread_b.read_buffer(dst.vaddr, len(payload))

    local = env.process(local_client())
    rdma = env.process(rdma_client())
    env.run(AllOf(env, [local, rdma]))
    env.run()  # must quiesce: parked monitor + parked retransmit timers

    # --- invariants -----------------------------------------------------
    if rdma.value != payload:
        raise AssertionError(f"seed {seed}: RDMA payload corrupted")
    if attempts.count("ok") < 3 and "quarantined" not in attempts:
        raise AssertionError(f"seed {seed}: local client starved: {attempts}")
    for pid, ctx in node.driver.processes.items():
        if ctx.pending:
            raise AssertionError(f"seed {seed}: pid {pid} left pending work")
    health = card_report(node.driver)["health"]
    if health["card"] not in ("healthy", "degraded", "quarantined"):
        raise AssertionError(f"seed {seed}: bad card verdict {health['card']}")
    return {
        "seed": seed,
        "card": health["card"],
        "recoveries": node.driver.recovery.total_recoveries(),
        "attempts": len(attempts),
        "sim_ns": env.now,
    }


def run_cluster_seed(seed: int) -> dict:
    """Cluster soak: 4 nodes, seeded crash/flap/partition chaos, fault-
    tolerant allreduce loop.  Every failed round must abort symmetrically
    (no rank left parked — the final drain would livelock otherwise);
    after healing partitions and rebuilding over the survivors, at least
    one round must complete with the correct element-wise sum."""
    env = Environment()
    cluster = FpgaCluster(
        env, 4,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=NODE_CRASH, at_events=(120 + seed % 60,)),
            FaultRule(site=NET_PARTITION, at_events=(50 + seed % 25,)),
            FaultRule(site=LINK_FLAP, probability=(seed % 3) / 2000.0),
        ],
    )
    FaultInjector(plan).arm_cluster(cluster)
    monitor = ClusterMonitor(cluster, ClusterHealthConfig(interval_ns=50_000.0))
    group = cluster.collective_group(timeout_ns=5_000_000.0)
    members = list(range(4))  # node index per group rank

    def run_round(grp, count):
        """One allreduce over ``count`` ranks; returns (oks, errors)."""
        chunk = 12  # element count divides 2, 3 and 4 ranks
        results, errors = {}, {}

        def member(rank):
            payload = np.full(chunk, rank + 1, dtype="<u4").tobytes()
            try:
                results[rank] = yield from grp.allreduce(payload, rank=rank)
            except CollectiveAbortError as exc:
                errors[rank] = exc

        procs = [env.process(member(r)) for r in range(count)]
        env.run(AllOf(env, procs))
        return results, errors

    rounds_done = rounds_aborted = 0
    for _ in range(12):
        if rounds_done >= 3:
            break
        n = len(members)
        results, errors = run_round(group, n)
        if not errors:
            expected = np.full(12, n * (n + 1) // 2, dtype="<u4").tobytes()
            if any(results[r] != expected for r in range(n)):
                raise AssertionError(f"seed {seed}: allreduce sum wrong")
            rounds_done += 1
            continue
        # NCCL-style symmetric abort: every rank must have raised.
        if len(errors) != n or results:
            raise AssertionError(
                f"seed {seed}: asymmetric abort ({len(errors)}/{n} raised)"
            )
        rounds_aborted += 1
        cluster.switch.heal_all_partitions()
        survivors = [m for m in members if cluster.nodes[m].alive]
        if len(survivors) < 2:
            break
        ranks = [members.index(m) for m in survivors]
        group = group.rebuild(ranks)
        members = survivors
    if rounds_done < 1:
        raise AssertionError(f"seed {seed}: no allreduce round ever completed")
    monitor.stop()
    env.run()  # must quiesce: no parked rank, no live heartbeat loops
    return {
        "seed": seed,
        "members": len(members),
        "rounds": rounds_done,
        "aborts": rounds_aborted,
        "crashes": cluster.crashes,
        "flaps": cluster.switch.link_flaps,
        "partitions": cluster.switch.partitions_created,
        "sim_ns": env.now,
    }


#: Per-tenant pause budget for a live migration (stop-and-copy window).
MIGRATION_PAUSE_BUDGET_NS = 2_000_000.0


def run_migration_seed(seed: int) -> dict:
    """Migration soak: rolling-upgrade a 4-node cluster under live AES
    traffic with a seeded ``migrate.transfer_drop`` rate.  Invariants:
    every client request completes exactly once, every raw tenant's
    memory survives its forced moves byte-for-byte, every completed
    migration pauses its tenant for less than the stop-and-copy budget,
    and a transfer abort leaves the tenant live on the source."""
    env = Environment()
    cluster = FpgaCluster(
        env, 4,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            mmu=MmuConfig(tlb=TlbConfig(page_size=PAGE_4K)),
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    FaultInjector(FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=MIGRATE_TRANSFER_DROP,
                      probability=(seed % 5) / 25.0),
        ],
    )).arm_cluster(cluster)
    migrator = LiveMigrator(cluster)
    flow = BuildFlow("u55c")
    schedulers = []
    for node in cluster.nodes:
        checkpoint = LockedShellCheckpoint(
            "u55c", node.shell.config.services, node.shell.shell_id,
            sum(m.luts for m in modules_for_services(node.shell.config.services)),
        )
        scheduler = AppScheduler(node.driver)
        scheduler.register(
            "aes", flow.app_flow(checkpoint, ["aes_ecb"]).bitstream,
            AesEcbApp, idempotent=True,
        )
        schedulers.append(scheduler)

    # Raw tenants exercise the checkpoint path: buffers, an MR and an
    # undrained ring descriptor that must survive every forced move.
    tenants = {}

    def seed_tenant(pid, node):
        thread = CThread(cluster[node].driver, 0, pid=pid)
        buf = yield from thread.get_mem(2 * PAGE_4K, alloc_type=AllocType.REG)
        image = bytes((seed + pid + i) % 256 for i in range(2 * PAGE_4K))
        thread.write_buffer(buf.vaddr, image)
        thread.setup_rings(8)
        mr = yield from thread.register_mr(buf.vaddr, 2 * PAGE_4K)
        cluster[node].driver.ring_post(
            pid, RingOp(opcode=RingOpcode.READ, mr_key=mr.key, length=PAGE_4K)
        )
        tenants[pid] = (buf.vaddr, image)

    for pid, node in ((101, 0), (102, 1), (103, 2)):
        env.run(env.process(seed_tenant(pid, node)))

    completed = []

    def body(tag):
        def run(app):
            yield env.timeout(2_000.0)
            return tag
        return run

    def client(cid, count):
        for i in range(count):
            tag = f"s{seed}-c{cid}-r{i}"
            while True:
                live = [s for s in schedulers if not s.driver.node_down]
                target = min(
                    live, key=lambda s: (len(s._queue), s.driver.node_index)
                )
                try:
                    assert (yield from target.submit("aes", body(tag))) == tag
                    completed.append(tag)
                    break
                except (NodeDownError, AdmissionError, QuarantinedError):
                    yield env.timeout(10_000.0)
            # Spread requests past the 40 ms upgrade kickoff so drains
            # and re-programs happen under live load.
            yield env.timeout(4_000_000.0 + (seed % 7) * 250_000.0)

    outcome = {}

    def admin():
        yield env.timeout(40_000_000.0)  # let the first PRs land
        try:
            outcome["summary"] = yield from cluster.rolling_upgrade(
                reason=f"soak-{seed}"
            )
        except TransferAbortedError as exc:
            outcome["aborted"] = exc

    clients = [env.process(client(cid, 10)) for cid in range(4)]
    admin_proc = env.process(admin())
    env.run(AllOf(env, clients + [admin_proc]))
    env.run()  # must quiesce: nothing parked, no live migration channels

    # --- invariants -----------------------------------------------------
    expected = 4 * 10
    if len(completed) != expected or len(set(completed)) != expected:
        raise AssertionError(
            f"seed {seed}: exactly-once violated "
            f"({len(completed)} done, {len(set(completed))} unique)"
        )
    if "aborted" in outcome:
        # Retry exhaustion mid-upgrade is legal under heavy drop rates,
        # but it must leave every tenant live and intact somewhere.
        for pid in tenants:
            home = cluster.placements.get(pid)
            if home is None or pid not in cluster[home].driver.processes:
                raise AssertionError(
                    f"seed {seed}: tenant {pid} wedged after abort"
                )
    else:
        if [row["node"] for row in outcome["summary"]] != [0, 1, 2, 3]:
            raise AssertionError(f"seed {seed}: upgrade order wrong")
        if any(node.shell_version != 1 for node in cluster.nodes):
            raise AssertionError(f"seed {seed}: node missed its upgrade")
    for pid, (vaddr, image) in tenants.items():
        thread = CThread.attach(cluster[cluster.placements[pid]].driver, pid)
        if thread.read_buffer(vaddr, len(image)) != image:
            raise AssertionError(f"seed {seed}: tenant {pid} memory corrupted")
    pauses = [r.pause_ns for r in migrator.records if r.result == "completed"]
    if pauses and max(pauses) > MIGRATION_PAUSE_BUDGET_NS:
        raise AssertionError(
            f"seed {seed}: pause {max(pauses):.0f}ns over budget"
        )
    return {
        "seed": seed,
        "migrations": migrator.completed,
        "aborts": migrator.aborted,
        "drops": migrator.stats["transfer_drops"],
        "transplants": migrator.queue_transplants,
        "max_pause": max(pauses, default=0.0),
        "sim_ns": env.now,
    }


def _congestion_pass(seed: int) -> dict:
    """One deterministic congestion scenario: a DCQCN incast with the
    control-loop fault sites armed, then a PFC pause storm against a
    wedged host.  Returns the stats the digest is computed over."""
    env = Environment()
    switch = Switch(env, config=SwitchConfig(
        egress_capacity_bytes=32 << 10,
        ecn_threshold_bytes=8 << 10,
        pfc_enabled=True,
        xoff_bytes=16 << 10,
        xon_bytes=8 << 10,
        storm_threshold_ns=150_000.0,
    ))
    FaultInjector(FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=NET_ECN_SUPPRESS, probability=(seed % 4) / 10.0),
            FaultRule(site=NET_PAUSE_DROP, probability=(seed % 3) / 10.0),
        ],
    )).arm(switch=switch)
    config = RdmaConfig(
        mtu=1024,
        retransmit_timeout_ns=100_000.0,
        dcqcn=DcqcnConfig(
            enabled=True,
            min_rate=0.25,
            alpha_update_ns=5_000.0,
            rate_increase_ns=20_000.0,
            additive_increase=0.1,
            hyper_increase=0.5,
            cnp_interval_ns=10_000.0,
        ),
    )

    def attach(mac_value, ip, name):
        mac = MacAddress(mac_value)
        cmac = Cmac(env, name=f"{name}-cmac")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, ip, name=name, config=config)

        def read_local(vaddr, length):
            yield env.timeout(length / 125.0)
            return None

        def write_local(vaddr, data, length):
            yield env.timeout(length / 125.0)

        stack.bind_memory(read_local, write_local)
        return stack

    nsenders = 4
    receiver = attach(0x02_0000_0100, 0x0A0000FF, "soak-rx")
    senders = [
        attach(0x02_0000_0001 + i, 0x0A000001 + i, f"soak-s{i}")
        for i in range(nsenders)
    ]
    for i, sender in enumerate(senders):
        qp_s = sender.create_qp(1, psn=0)
        qp_r = receiver.create_qp(100 + i, psn=0)
        qp_s.connect(qp_r.local)
        qp_r.connect(qp_s.local)

    completed = [0] * nsenders
    flushed = [0] * nsenders

    def sender_proc(i, sender):
        for _ in range(4):
            try:
                yield from sender.rdma_write(1, 0, 0x1000, 32 << 10)
            except WrFlushError:
                # Retry exhaustion under armed faults is legal — but it
                # must surface as the typed flush error, not a hang.
                flushed[i] += 1
                return
            completed[i] += 1

    incast = [env.process(sender_proc(i, s)) for i, s in enumerate(senders)]
    env.run(AllOf(env, incast))
    env.run()  # quiesce: retransmit timers parked, queues drained

    # --- phase 2: pause storm against a wedged host ---------------------
    blaster_mac = MacAddress(0x02_0000_0200)
    wedged_mac = MacAddress(0x02_0000_0201)
    blaster = Cmac(env, name="storm-blaster")
    wedged = Cmac(env, name="storm-wedged", rx_xoff_frames=4, rx_xon_frames=2)
    switch.attach(blaster_mac, blaster)
    switch.attach(wedged_mac, wedged)
    frames = 200

    def storm_blast():
        from repro.net import BthHeader, RocePacket, RoceOpcode
        for psn in range(frames):
            yield from blaster.tx(RocePacket.build(
                src_mac=blaster_mac, dst_mac=wedged_mac,
                src_ip=0x0B000001, dst_ip=0x0B000002,
                bth=BthHeader(opcode=RoceOpcode.SEND_ONLY, dest_qp=9,
                              psn=psn),
                payload=b"s" * 1024,
            ))

    def wedged_consumer():
        # Drain a handful of frames, then wedge: the rx watermark pause
        # never lifts and must escalate to a storm verdict.
        for _ in range(4 + seed % 4):
            yield from wedged.rx()

    env.process(storm_blast())
    env.process(wedged_consumer())
    env.run()  # must quiesce via storm mitigation, not hang

    # --- invariants -----------------------------------------------------
    for i in range(nsenders):
        if completed[i] + (1 if flushed[i] else 0) == 0:
            raise AssertionError(
                f"seed {seed}: sender {i} neither completed nor flushed"
            )
    if sum(completed) == 0:
        raise AssertionError(f"seed {seed}: incast made no progress")
    if switch.pfc_storms < 1:
        raise AssertionError(f"seed {seed}: pause storm went undetected")
    for err in switch.pfc_storm_errors:
        if not isinstance(err, PfcStormError):
            raise AssertionError(
                f"seed {seed}: storm surfaced as {type(err).__name__}"
            )
    if wedged.rx_frames != frames:
        raise AssertionError(
            f"seed {seed}: storm mitigation stranded "
            f"{frames - wedged.rx_frames} frames"
        )
    return {
        "completed": completed,
        "flushed": flushed,
        "counters": sorted(switch.counters().items()),
        "storms": switch.pfc_storms,
        "cnps": sum(s.stats["cnps_received"] for s in senders),
        "sim_ns": env.now,
    }


def run_congestion_seed(seed: int) -> dict:
    """Congestion soak: the scenario must be deterministic — two runs of
    the same seed digest identically (REPRO_SANITIZE=1 in CI also arms
    the process-wide SimSanitizer over both runs)."""
    first = _congestion_pass(seed)
    second = _congestion_pass(seed)

    def digest(row):
        return hashlib.sha256(repr(row).encode()).hexdigest()

    if digest(first) != digest(second):
        raise AssertionError(
            f"seed {seed}: double-run digest mismatch: "
            f"{digest(first)[:12]} != {digest(second)[:12]}"
        )
    return {
        "seed": seed,
        "completed": sum(first["completed"]),
        "flushed": sum(first["flushed"]),
        "storms": first["storms"],
        "cnps": first["cnps"],
        "digest": digest(first)[:12],
        "sim_ns": first["sim_ns"],
    }


def _soak(name, fn, seeds, timeout, render) -> int:
    failures = 0
    for seed in range(seeds):
        start = time.monotonic()
        signal.alarm(timeout)
        try:
            row = fn(seed)
        except SoakTimeout:
            failures += 1
            print(f"{name} seed {seed:4d}  TIMEOUT after {timeout}s "
                  "(simulation livelock?)", flush=True)
            continue
        except AssertionError as exc:
            failures += 1
            print(f"{name} seed {seed:4d}  FAIL  {exc}", flush=True)
            continue
        finally:
            signal.alarm(0)
        elapsed = time.monotonic() - start
        print(f"{name} seed {seed:4d}  ok  {render(row)} "
              f"sim={row['sim_ns']:.0f}ns wall={elapsed:.1f}s", flush=True)
    print(f"{name}: {seeds - failures}/{seeds} seeds clean", flush=True)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to soak (default 25)")
    parser.add_argument("--timeout", type=int, default=60,
                        help="wall-clock seconds allowed per seed")
    parser.add_argument("--skip-cluster", action="store_true",
                        help="run only the single-card health scenario")
    parser.add_argument("--skip-migration", action="store_true",
                        help="skip the rolling-upgrade migration scenario")
    parser.add_argument("--only-migration", action="store_true",
                        help="run only the rolling-upgrade migration scenario")
    parser.add_argument("--skip-congestion", action="store_true",
                        help="skip the incast/PFC-storm congestion scenario")
    parser.add_argument("--only-congestion", action="store_true",
                        help="run only the incast/PFC-storm congestion "
                             "scenario")
    args = parser.parse_args(argv)

    signal.signal(signal.SIGALRM, _alarm)
    failures = 0
    if args.only_congestion:
        return 1 if _soak(
            "congestion", run_congestion_seed, args.seeds, args.timeout,
            lambda row: (
                f"completed={row['completed']} flushed={row['flushed']} "
                f"storms={row['storms']} cnps={row['cnps']} "
                f"digest={row['digest']}"
            ),
        ) else 0
    if not args.only_migration:
        failures += _soak(
            "card", run_seed, args.seeds, args.timeout,
            lambda row: f"card={row['card']:10s} recoveries={row['recoveries']}",
        )
        if not args.skip_cluster:
            failures += _soak(
                "cluster", run_cluster_seed, args.seeds, args.timeout,
                lambda row: (
                    f"members={row['members']} rounds={row['rounds']} "
                    f"aborts={row['aborts']} crashes={row['crashes']} "
                    f"flaps={row['flaps']} parts={row['partitions']}"
                ),
            )
    if not args.skip_migration:
        failures += _soak(
            "migration", run_migration_seed, args.seeds, args.timeout,
            lambda row: (
                f"migrations={row['migrations']} aborts={row['aborts']} "
                f"drops={row['drops']} transplants={row['transplants']} "
                f"max_pause={row['max_pause']:.0f}ns"
            ),
        )
    if not args.only_migration and not args.skip_congestion:
        failures += _soak(
            "congestion", run_congestion_seed, args.seeds, args.timeout,
            lambda row: (
                f"completed={row['completed']} flushed={row['flushed']} "
                f"storms={row['storms']} cnps={row['cnps']} "
                f"digest={row['digest']}"
            ),
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
