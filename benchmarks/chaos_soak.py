#!/usr/bin/env python
"""Chaos soak: the health-chaos scenario across many seeds, time-boxed.

CI's ``chaos-soak`` job runs this to catch rare-schedule bugs the fixed
test seeds miss: every seed arms ``app.hang`` + ``net.drop`` against a
two-node cluster (compute on one region, RDMA across the lossy switch)
and checks the safety invariants the unit tests assert for a single
seed.  A per-seed wall-clock alarm converts any simulation livelock into
a loud failure instead of a hung CI job.

Usage::

    python benchmarks/chaos_soak.py --seeds 25 --timeout 60
"""

from __future__ import annotations

import argparse
import signal
import sys
import time

sys.path.insert(0, "src")

from repro import Environment, Oper, RdmaSg, SgEntry  # noqa: E402
from repro.apps import PassThroughApp  # noqa: E402
from repro.cluster import FpgaCluster  # noqa: E402
from repro.core import LocalSg, ServiceConfig  # noqa: E402
from repro.driver.report import card_report  # noqa: E402
from repro.faults import (  # noqa: E402
    APP_HANG,
    NET_DROP,
    FaultInjector,
    FaultPlan,
    FaultRule,
)
from repro.health import (  # noqa: E402
    DecoupledError,
    HealthConfig,
    HealthMonitor,
    QuarantinedError,
    RecoveredError,
)
from repro.net import RdmaConfig  # noqa: E402
from repro.sim import AllOf  # noqa: E402


class SoakTimeout(Exception):
    """A single seed blew its wall-clock budget (likely a livelock)."""


def _alarm(signum, frame):
    raise SoakTimeout()


def run_seed(seed: int) -> dict:
    """One chaos scenario; returns a result row or raises on violation."""
    env = Environment()
    cluster = FpgaCluster(
        env, 2,
        services=ServiceConfig(
            en_memory=True, en_rdma=True,
            rdma=RdmaConfig(retransmit_timeout_ns=50_000),
        ),
    )
    node = cluster[0]
    HealthMonitor(node.driver, HealthConfig(
        poll_interval_ns=5_000.0, deadline_ns=50_000.0, drain_ns=10_000.0,
    ))
    victim = node.shell.vfpgas[0]
    plan = FaultPlan(
        seed=seed,
        rules=[
            FaultRule(site=APP_HANG, at_events=(seed % 4,),
                      match=lambda v: v is victim),
            FaultRule(site=NET_DROP, probability=0.02 + (seed % 5) / 100.0),
        ],
    )
    FaultInjector(plan).arm_cluster(cluster)
    node.shell.load_app(0, PassThroughApp())
    thread_a, thread_b = cluster.connect_qps(0, 1, pid_a=1, pid_b=2,
                                             qpn_a=1, qpn_b=2)
    payload = bytes((seed + i) % 256 for i in range(16_384))
    attempts = []

    def local_client():
        src = yield from thread_a.get_mem(1 << 13)
        dst = yield from thread_a.get_mem(1 << 13)
        sg = SgEntry(local=LocalSg(src_addr=src.vaddr, src_len=1 << 13,
                                   dst_addr=dst.vaddr, dst_len=1 << 13))
        for _ in range(20):
            try:
                yield from thread_a.invoke(Oper.LOCAL_TRANSFER, sg)
                attempts.append("ok")
            except (RecoveredError, DecoupledError):
                attempts.append("recovered")
            except QuarantinedError:
                attempts.append("quarantined")
                return
            if attempts.count("ok") >= 3:
                return
            yield env.timeout(50_000.0)

    def rdma_client():
        src = yield from thread_a.get_mem(len(payload))
        dst = yield from thread_b.get_mem(len(payload))
        thread_a.write_buffer(src.vaddr, payload)
        yield from thread_a.invoke(
            Oper.REMOTE_RDMA_WRITE,
            SgEntry(rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                                len=len(payload), qpn=1)),
        )
        return thread_b.read_buffer(dst.vaddr, len(payload))

    local = env.process(local_client())
    rdma = env.process(rdma_client())
    env.run(AllOf(env, [local, rdma]))
    env.run()  # must quiesce: parked monitor + parked retransmit timers

    # --- invariants -----------------------------------------------------
    if rdma.value != payload:
        raise AssertionError(f"seed {seed}: RDMA payload corrupted")
    if attempts.count("ok") < 3 and "quarantined" not in attempts:
        raise AssertionError(f"seed {seed}: local client starved: {attempts}")
    for pid, ctx in node.driver.processes.items():
        if ctx.pending:
            raise AssertionError(f"seed {seed}: pid {pid} left pending work")
    health = card_report(node.driver)["health"]
    if health["card"] not in ("healthy", "degraded", "quarantined"):
        raise AssertionError(f"seed {seed}: bad card verdict {health['card']}")
    return {
        "seed": seed,
        "card": health["card"],
        "recoveries": node.driver.recovery.total_recoveries(),
        "attempts": len(attempts),
        "sim_ns": env.now,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to soak (default 25)")
    parser.add_argument("--timeout", type=int, default=60,
                        help="wall-clock seconds allowed per seed")
    args = parser.parse_args(argv)

    signal.signal(signal.SIGALRM, _alarm)
    failures = 0
    for seed in range(args.seeds):
        start = time.monotonic()
        signal.alarm(args.timeout)
        try:
            row = run_seed(seed)
        except SoakTimeout:
            failures += 1
            print(f"seed {seed:4d}  TIMEOUT after {args.timeout}s "
                  "(simulation livelock?)", flush=True)
            continue
        except AssertionError as exc:
            failures += 1
            print(f"seed {seed:4d}  FAIL  {exc}", flush=True)
            continue
        finally:
            signal.alarm(0)
        elapsed = time.monotonic() - start
        print(f"seed {seed:4d}  ok  card={row['card']:10s} "
              f"recoveries={row['recoveries']} sim={row['sim_ns']:.0f}ns "
              f"wall={elapsed:.1f}s", flush=True)
    print(f"\n{args.seeds - failures}/{args.seeds} seeds clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
