"""Figure 8: AES ECB bandwidth sharing across vFPGAs.

1 to 4 tenants each running a memory-bound AES ECB instance.  The host
bandwidth (~12 GB/s) must be split equally, and the cumulative throughput
must stay constant (no arbiter/packetizer overhead).
"""

import pytest
from conftest import one_shot

from repro.experiments import run_fig8


def test_fig8_fair_sharing(benchmark, report):
    result = one_shot(benchmark, run_fig8, max_tenants=4)
    report(result)
    singles = result.rows[0]["cumulative_gbps"]
    for row in result.rows:
        # Fairness: min/max per-tenant rate within 5%.
        assert row["fairness"] > 0.95
        # Cumulative conserved within 5% of the single-tenant rate.
        assert row["cumulative_gbps"] == pytest.approx(singles, rel=0.05)
    # Saturates the ~12 GB/s XDMA host link of the paper.
    assert 11.0 < singles < 12.5
