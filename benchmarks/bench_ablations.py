"""Ablations of the design choices DESIGN.md calls out.

Not paper figures: these quantify the packetization granularity, TLB page
size, credit depth, striping, and completion-writeback decisions.
"""

from conftest import one_shot

from repro.experiments import (
    run_ablation_credits,
    run_ablation_packet_size,
    run_ablation_page_size,
    run_ablation_striping,
    run_ablation_writeback,
)


def test_ablation_packet_size(benchmark, report):
    result = one_shot(benchmark, run_ablation_packet_size, sizes=(512, 2048, 4096, 16384))
    report(result)
    series = {row["packet_bytes"]: row["throughput_gbps"] for row in result.rows}
    # 4 KB packets must recover most of the large-packet bandwidth...
    assert series[4096] > 0.9 * series[16384]
    # ...while tiny packets lose noticeably to per-packet overheads.
    assert series[512] < series[4096]


def test_ablation_page_size(benchmark, report):
    result = one_shot(benchmark, run_ablation_page_size)
    report(result)
    rows = {row["page_size"]: row for row in result.rows}
    # 1 GB pages take ~1 fault for the 64 MB set; 2 MB pages take 32.
    assert rows["2MB"]["page_faults"] > 10 * rows["1GB"]["page_faults"]


def test_ablation_credits(benchmark, report):
    result = one_shot(benchmark, run_ablation_credits, depths=(2, 8, 32))
    report(result)
    series = {row["credits"]: row["throughput_gbps"] for row in result.rows}
    assert series[2] < series[8]  # starved
    assert series[32] < series[8] * 1.2  # diminishing returns


def test_ablation_striping(benchmark, report):
    result = one_shot(benchmark, run_ablation_striping)
    report(result)
    rows = {row["mode"]: row["throughput_gbps"] for row in result.rows}
    assert rows["striped (8 streams)"] > 4 * rows["single channel"]


def test_ablation_writeback(benchmark, report):
    result = one_shot(benchmark, run_ablation_writeback)
    report(result)
    rows = {row["mode"]: row["latency_per_4k_transfer_us"] for row in result.rows}
    assert rows["writeback"] < rows["MMIO polling"]


def test_ablation_transport(benchmark, report):
    from repro.experiments import run_ablation_transport

    result = one_shot(benchmark, run_ablation_transport)
    report(result)
    rows = {row["transport"]: row for row in result.rows}
    # One-sided RDMA beats the TCP byte stream on the same wire.
    assert rows["rdma"]["goodput_gbps"] > 2 * rows["tcp"]["goodput_gbps"]
    assert rows["rdma"]["latency_us"] < rows["tcp"]["latency_us"]
