"""Shared fixtures for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation via :mod:`repro.experiments` and reports the reproduced
rows/series; pytest-benchmark measures the wall-clock cost of the
underlying simulation.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult so it survives pytest's capture."""

    def _report(result):
        with capsys.disabled():
            print()
            print(result.render())
        return result

    return _report


def one_shot(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
