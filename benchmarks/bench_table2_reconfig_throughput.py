"""Table 2: reconfiguration throughput of the configuration ports.

Streams the same partial bitstream through AXI HWICAP, PCAP, MCAP and the
Coyote v2 ICAP controller; the measured MB/s must match the paper's rows.
"""

import pytest
from conftest import one_shot

from repro.experiments import run_table2


def test_table2_reconfig_throughput(benchmark, report):
    result = one_shot(benchmark, run_table2)
    report(result)
    by_name = {row["application"]: row for row in result.rows}
    for name, expected in [
        ("AXI HWICAP", 19),
        ("PCAP", 128),
        ("MCAP", 145),
        ("Coyote v2 ICAP", 800),
    ]:
        assert by_name[name]["max_throughput_mbps"] == pytest.approx(expected, rel=0.02)
    # The headline: Coyote's controller is the fastest by a wide margin.
    coyote = by_name["Coyote v2 ICAP"]["max_throughput_mbps"]
    best_baseline = max(
        by_name[n]["max_throughput_mbps"] for n in ("AXI HWICAP", "PCAP", "MCAP")
    )
    assert coyote / best_baseline > 5
