"""Table 3: shell reconfiguration latency for three scenarios.

Kernel latency (pure ICAP), total latency (+ disk read + copy to kernel
space) and the Vivado Hardware Manager full-reprogramming baseline.
"""

import pytest
from conftest import one_shot

from repro.experiments import run_table3


def test_table3_reconfig_latency(benchmark, report):
    result = one_shot(benchmark, run_table3, trials=5)
    report(result)
    for row in result.rows:
        # Within 12% of the paper's measurements.
        assert row["kernel_ms"] == pytest.approx(row["paper_kernel_ms"], rel=0.12)
        assert row["total_ms"] == pytest.approx(row["paper_total_ms"], rel=0.12)
        assert row["vivado_ms"] == pytest.approx(row["paper_vivado_ms"], rel=0.12)
        # The order-of-magnitude claim.
        assert row["vivado_ms"] / row["total_ms"] > 10


def test_latency_grows_with_scenario_complexity(report):
    result = run_table3(trials=1)
    kernels = [row["kernel_ms"] for row in result.rows]
    assert kernels == sorted(kernels)
