#!/usr/bin/env python
"""Fixed-workload performance harness emitting ``BENCH_PR2.json``.

Runs a small suite of representative workloads over the simulated card
and records, for every workload, achieved throughput, operation latency
percentiles, simulated time and host wall time:

* ``hbm_scaling``       -- card-memory pass-through across HBM channel counts
                           (the Figure 7a axis).
* ``rdma_msgsize``      -- two-node RDMA WRITE message-size sweep over the
                           simulated RoCE fabric.
* ``multitenant_aes``   -- AES ECB tenants sharing one card (Figure 8 axis).
* ``scheduler_churn``   -- AppScheduler serving alternating kernels, measuring
                           queue wait and reconfiguration overhead; also runs
                           under ``SimProfiler`` to capture simulator hot paths.
* ``net_incast``        -- N-to-1 RDMA incast with DCQCN on vs off; gates the
                           collapse-avoidance ratio and fairness, and emits
                           both congestion trajectories to ``BENCH_NET.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--quick] [--out FILE]
    PYTHONPATH=src python benchmarks/perf_harness.py --validate FILE

``--quick`` shrinks every workload for CI smoke runs; ``--validate``
checks an existing result file against the schema and exits.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import CThread, Environment, LocalSg, Oper, RdmaSg, SgEntry  # noqa: E402
from repro.api import AppScheduler  # noqa: E402
from repro.apps import AesEcbApp, HllApp, PassThroughApp  # noqa: E402
from repro.cluster import FpgaCluster  # noqa: E402
from repro.core import ServiceConfig, Shell, ShellConfig  # noqa: E402
from repro.driver import Driver, RingOp, RingOpcode  # noqa: E402
from repro.experiments.macrobench import multitenant_ecb_rates  # noqa: E402
from repro.experiments.microbench import hbm_throughput  # noqa: E402
from repro.net import (  # noqa: E402
    CMAC_BANDWIDTH,
    Cmac,
    DcqcnConfig,
    MacAddress,
    RdmaStack,
    Switch,
    SwitchConfig,
)
from repro.net import RdmaConfig as NetRdmaConfig  # noqa: E402
from repro.sim import AllOf, LatencyStats  # noqa: E402
from repro.synth import (  # noqa: E402
    BuildFlow,
    LockedShellCheckpoint,
    modules_for_services,
)
from repro.telemetry import SimProfiler  # noqa: E402

SCHEMA_VERSION = 2
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_PR2.json"
)

__all__ = ["run_suite", "validate_results", "main"]


def _workload(name, *, throughput_gbps=None, ops_per_s=None,
              latency_ns=None, sim_time_ns=0.0, wall_time_s=0.0, detail=None):
    return {
        "name": name,
        "throughput_gbps": throughput_gbps,
        "ops_per_s": ops_per_s,
        "latency_ns": latency_ns,
        "sim_time_ns": sim_time_ns,
        "wall_time_s": wall_time_s,
        "detail": detail or {},
    }


def _percentiles(stats: LatencyStats) -> Dict[str, float]:
    return {
        "p50": stats.percentile(50),
        "p99": stats.percentile(99),
        "mean": stats.mean,
    }


# ----------------------------------------------------------------- workloads


def bench_hbm_scaling(quick: bool) -> Dict[str, Any]:
    channels = [1, 4] if quick else [1, 2, 4, 8]
    transfer_mb = 1 if quick else 2
    t0 = time.perf_counter()
    series = {str(ch): hbm_throughput(ch, transfer_mb=transfer_mb) for ch in channels}
    wall = time.perf_counter() - t0
    best = max(series.values())
    return _workload(
        "hbm_scaling",
        throughput_gbps=best,
        wall_time_s=wall,
        detail={"transfer_mb": transfer_mb, "gbps_by_channels": series},
    )


def bench_rdma_msgsize(quick: bool) -> Dict[str, Any]:
    sizes = [4096, 65536] if quick else [4096, 65536, 1 << 20]
    messages = 4 if quick else 16
    t0 = time.perf_counter()
    series: Dict[str, float] = {}
    lat = LatencyStats("rdma_write")
    total_bytes = 0
    total_sim_ns = 0.0
    for size in sizes:
        env = Environment()
        cluster = FpgaCluster(
            env, 2, services=ServiceConfig(en_memory=True, en_rdma=True)
        )
        thread_a, thread_b = cluster.connect_qps(
            0, 1, pid_a=1, pid_b=2, qpn_a=1, qpn_b=2
        )

        def client():
            src = yield from thread_a.get_mem(size)
            dst = yield from thread_b.get_mem(size)
            sg = SgEntry(
                rdma=RdmaSg(local_addr=src.vaddr, remote_addr=dst.vaddr,
                            len=size, qpn=1)
            )
            for _ in range(messages):
                start = env.now
                yield from thread_a.invoke(Oper.REMOTE_RDMA_WRITE, sg)
                lat.record(env.now - start)

        env.run(env.process(client()))
        series[str(size)] = size * messages * 8 / env.now if env.now else 0.0
        total_bytes += size * messages
        total_sim_ns += env.now
    wall = time.perf_counter() - t0
    return _workload(
        "rdma_msgsize",
        throughput_gbps=max(series.values()),
        latency_ns=_percentiles(lat),
        sim_time_ns=total_sim_ns,
        wall_time_s=wall,
        detail={"messages_per_size": messages, "gbps_by_msgsize": series},
    )


def bench_multitenant_aes(quick: bool) -> Dict[str, Any]:
    tenants = 2 if quick else 4
    transfer_mb = 1 if quick else 2
    messages = 2 if quick else 3
    t0 = time.perf_counter()
    rates = multitenant_ecb_rates(tenants, transfer_mb=transfer_mb, messages=messages)
    wall = time.perf_counter() - t0
    return _workload(
        "multitenant_aes",
        throughput_gbps=sum(rates),
        wall_time_s=wall,
        detail={
            "tenants": tenants,
            "per_tenant_gbps": rates,
            "fairness_min_over_max": min(rates) / max(rates) if max(rates) else 0.0,
        },
    )


def _run_churn(requests: int, cache_enabled: bool, profile: bool = False):
    """One scheduler-churn pass; returns (env, scheduler, profiler, wall_s)."""
    env = Environment()
    shell = Shell(
        env, ShellConfig(num_vfpgas=1, services=ServiceConfig(en_memory=False))
    )
    driver = Driver(env, shell)
    shell.static.icap.region_cache_enabled = cache_enabled
    flow = BuildFlow("u55c")
    checkpoint = LockedShellCheckpoint(
        "u55c", shell.config.services, shell.shell_id,
        sum(m.luts for m in modules_for_services(shell.config.services)),
    )
    scheduler = AppScheduler(driver, affinity_window=4)
    scheduler.register("hll", flow.app_flow(checkpoint, ["hll"]).bitstream, HllApp)
    scheduler.register(
        "aes", flow.app_flow(checkpoint, ["aes_ecb"]).bitstream, AesEcbApp
    )

    def body(app):
        yield env.timeout(2_000.0)
        return True

    def client(i):
        kernel = "hll" if i % 3 else "aes"
        yield from scheduler.submit(kernel, body)

    procs = [env.process(client(i)) for i in range(requests)]
    profiler = SimProfiler().attach(env) if profile else None
    t0 = time.perf_counter()
    env.run(AllOf(env, procs))
    wall = time.perf_counter() - t0
    if profiler is not None:
        profiler.detach()
    return env, scheduler, profiler, wall


#: Regression bound asserted here and by ``validate_results``: sim events
#: attributed to the scheduler component per request served.  The edge-
#: triggered loop runs at ~1.3 (one body event per request plus a shared
#: wakeup/reconfig budget); the old level-triggered loop sat at ~2.0+.
SCHED_EVENTS_PER_REQUEST_BOUND = 1.3


def bench_scheduler_churn(quick: bool) -> Dict[str, Any]:
    # Same request count in quick mode: the events-per-request bound
    # amortises the fixed wakeup/reconfig events over the request count,
    # and 24 requests cost well under 0.1 s of wall time.
    requests = 24
    # A/B the per-region bitstream cache: the alternating kernels make
    # every reconfiguration a cache hit after its first load, so the
    # warm pass must finish in markedly less simulated time.
    cold_env, _, _, _ = _run_churn(requests, cache_enabled=False)
    env, scheduler, profiler, wall = _run_churn(
        requests, cache_enabled=True, profile=True
    )
    icap = scheduler.driver.shell.static.icap
    speedup = cold_env.now / env.now if env.now else 0.0
    assert speedup > 1.2, (
        f"bitstream cache must speed up scheduler churn: cold {cold_env.now} ns "
        f"vs warm {env.now} ns (speedup {speedup:.2f}x)"
    )
    sched_events = profiler.events.get("sched", 0)
    events_per_request = sched_events / requests if requests else 0.0
    assert events_per_request <= SCHED_EVENTS_PER_REQUEST_BOUND, (
        f"edge-triggered scheduler regressed: {sched_events} sched events for "
        f"{requests} requests = {events_per_request:.2f} events/request "
        f"(bound {SCHED_EVENTS_PER_REQUEST_BOUND})"
    )
    wait = scheduler.queue_wait
    return _workload(
        "scheduler_churn",
        ops_per_s=requests / (env.now / 1e9) if env.now else 0.0,
        latency_ns={
            "p50": wait.percentile(50),
            "p99": wait.percentile(99),
            "mean": wait.mean,
        },
        sim_time_ns=env.now,
        wall_time_s=wall,
        detail={
            "requests": requests,
            "reconfigurations": scheduler.reconfigurations,
            "affinity_hits": scheduler.affinity_hits,
            "reconfig_failures": scheduler.reconfig_failures,
            "wakeups": scheduler.wakeups,
            "dispatches": scheduler.dispatches,
            "events_per_request": events_per_request,
            "events_per_request_bound": SCHED_EVENTS_PER_REQUEST_BOUND,
            "events_per_sec": profiler.events_per_sec,
            "bitstream_cache": {
                "cold_sim_time_ns": cold_env.now,
                "warm_sim_time_ns": env.now,
                "speedup": speedup,
                "cache_hits": icap.cache_hits,
                "cache_misses": icap.cache_misses,
            },
            "profile": profiler.report(top=6),
        },
    )


def bench_engine_events(quick: bool) -> Dict[str, Any]:
    """Raw DES-core throughput: dispatched events per host second.

    A pure timer/relay stress with no hardware models attached, so the
    number isolates the engine fast path (slots heap entries, relay
    free-list, ``run_batch`` drain) from workload logic.
    """
    n_procs = 64
    steps = 400 if quick else 2_000

    env = Environment()

    def ticker(pid):
        for step_no in range(steps):
            yield env.sleep(float((pid + step_no) % 7) + 1.0)

    for pid in range(n_procs):
        env.process(ticker(pid), name=f"tick{pid}")
    profiler = SimProfiler().attach(env)
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    profiler.detach()
    return _workload(
        "engine_events",
        ops_per_s=env.events_processed / wall if wall else 0.0,
        sim_time_ns=env.now,
        wall_time_s=wall,
        detail={
            "processes": n_procs,
            "steps_per_process": steps,
            "events_processed": env.events_processed,
            "events_per_sec": profiler.events_per_sec,
        },
    )


#: Regression bounds asserted here and by ``validate_results``.  The
#: transfer mix is identical on both paths, so the *total* events ratio
#: (ring/ioctl) is diluted by the shared data-path work but must still
#: sit measurably below 1.  The *submit-path* ratio counts only events
#: attributed to the submitting client process (SimProfiler): per-call
#: submission resumes the client once per request, batched doorbells
#: once per drain — this is the ABI cost the ring removes, so the bound
#: is aggressive.
RING_EVENTS_RATIO_BOUND = 0.98
RING_SUBMIT_EVENTS_RATIO_BOUND = 0.5


def _run_submit(requests: int, transfer_bytes: int, use_ring: bool, slots: int):
    """One submit-path pass; returns (env, driver, submit-phase events)."""
    env = Environment()
    shell = Shell(env, ShellConfig(num_vfpgas=1))
    driver = Driver(env, shell)
    shell.load_app(0, PassThroughApp())
    thread = CThread(driver, 0, pid=1)
    payload = bytes(range(256)) * (transfer_bytes // 256)
    measured = {}

    def submit():
        src = yield from thread.get_mem(transfer_bytes * requests)
        dst = yield from thread.get_mem(transfer_bytes * requests)
        for i in range(requests):
            thread.write_buffer(src.vaddr + i * transfer_bytes, payload)
        if use_ring:
            thread.setup_rings(slots=slots)
            src_mr = yield from thread.register_mr(
                src.vaddr, transfer_bytes * requests, writable=False
            )
            dst_mr = yield from thread.register_mr(
                dst.vaddr, transfer_bytes * requests
            )
        profiler = SimProfiler().attach(env)
        events_before = env.events_processed
        started_at = env.now
        if use_ring:
            ops = [
                RingOp(
                    opcode=RingOpcode.TRANSFER,
                    mr_key=src_mr.key,
                    offset=i * transfer_bytes,
                    length=transfer_bytes,
                    dst_mr_key=dst_mr.key,
                    dst_offset=i * transfer_bytes,
                )
                for i in range(requests)
            ]
            entries = yield from thread.post_many(ops)
            assert len(entries) == requests, (
                f"ring batch lost completions: {len(entries)}/{requests}"
            )
        else:
            for i in range(requests):
                sg = SgEntry(local=LocalSg(
                    src_addr=src.vaddr + i * transfer_bytes,
                    src_len=transfer_bytes,
                    dst_addr=dst.vaddr + i * transfer_bytes,
                    dst_len=transfer_bytes,
                ))
                yield from thread.invoke(Oper.LOCAL_TRANSFER, sg)
        measured["events"] = env.events_processed - events_before
        measured["sim_ns"] = env.now - started_at
        profiler.detach()
        measured["client_events"] = profiler.events.get("submit", 0)
        out = thread.read_buffer(dst.vaddr + (requests - 1) * transfer_bytes,
                                 transfer_bytes)
        assert out == payload, "submit path corrupted data"

    env.run(env.process(submit(), name="submit"))
    return env, driver, measured


def bench_ring_submit(quick: bool) -> Dict[str, Any]:
    """Batched doorbell submission vs the per-call ioctl (same transfers)."""
    requests = 32
    transfer_bytes = 2048
    slots = 16  # < requests, so the ring must stall and re-doorbell once
    t0 = time.perf_counter()
    _, _, ioctl = _run_submit(requests, transfer_bytes, use_ring=False, slots=slots)
    env, driver, ring = _run_submit(requests, transfer_bytes, use_ring=True, slots=slots)
    wall = time.perf_counter() - t0
    ioctl_epr = ioctl["events"] / requests
    ring_epr = ring["events"] / requests
    ratio = ring_epr / ioctl_epr if ioctl_epr else 1.0
    assert ratio <= RING_EVENTS_RATIO_BOUND, (
        f"ring submit must beat the per-call ioctl: {ring_epr:.2f} vs "
        f"{ioctl_epr:.2f} events/request (ratio {ratio:.3f}, bound "
        f"{RING_EVENTS_RATIO_BOUND})"
    )
    submit_ratio = (
        ring["client_events"] / ioctl["client_events"]
        if ioctl["client_events"] else 1.0
    )
    assert submit_ratio <= RING_SUBMIT_EVENTS_RATIO_BOUND, (
        f"batched doorbells must collapse per-request client wakeups: "
        f"{ring['client_events']} vs {ioctl['client_events']} submit-path "
        f"events (ratio {submit_ratio:.3f}, bound "
        f"{RING_SUBMIT_EVENTS_RATIO_BOUND})"
    )
    return _workload(
        "ring_submit",
        ops_per_s=requests / (ring["sim_ns"] / 1e9) if ring["sim_ns"] else 0.0,
        sim_time_ns=ring["sim_ns"],
        wall_time_s=wall,
        detail={
            "requests": requests,
            "transfer_bytes": transfer_bytes,
            "ring_slots": slots,
            "ioctl_events_per_request": ioctl_epr,
            "ring_events_per_request": ring_epr,
            "events_ratio": ratio,
            "events_ratio_bound": RING_EVENTS_RATIO_BOUND,
            "ioctl_submit_events": ioctl["client_events"],
            "ring_submit_events": ring["client_events"],
            "submit_events_ratio": submit_ratio,
            "submit_events_ratio_bound": RING_SUBMIT_EVENTS_RATIO_BOUND,
            "doorbells": driver.ring_doorbells,
            "descriptors_per_doorbell": (
                driver.ring_descriptors / driver.ring_doorbells
                if driver.ring_doorbells else 0.0
            ),
            "batches": driver.ring_batches,
            "full_stalls": driver.ring_full_stalls,
        },
    )


#: Collapse-avoidance bounds asserted here and by ``validate_results``.
#: At the incast collapse point DCQCN-on must sustain at least this
#: multiple of DCQCN-off's goodput (measured headroom ~4.3x full /
#: ~3.2x quick), and its Jain fairness index must stay above the
#: fairness floor (measured ~0.95 full / ~0.99 quick; DCQCN-off sits
#: near 0.2-0.4 because go-back-N retry lotteries starve victim flows).
NET_COLLAPSE_RATIO_BOUND = 2.0
NET_FAIRNESS_BOUND = 0.85

BENCH_NET_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_NET.json"
)


def _run_incast(nsenders, dcqcn, horizon_ns, *, msg_bytes=64 << 10,
                sample_ns=50_000.0):
    """One N-to-1 incast pass; returns goodput + congestion trajectory.

    All senders stream fixed-size RDMA WRITEs at a single receiver
    through one switch whose receiver-facing egress queue is the
    bottleneck.  1 KB MTU against a 32 KB buffer reproduces the classic
    collapse: with no rate control the synchronized windows overrun the
    queue, go-back-N retransmissions waste the drained bytes and tail
    losses strand flows in RTO, so goodput collapses and whichever
    flows win the retry lottery starve the rest.
    """
    env = Environment()
    switch = Switch(env, config=SwitchConfig(
        egress_capacity_bytes=32 << 10,
        ecn_threshold_bytes=8 << 10,
    ))
    cfg = NetRdmaConfig(
        mtu=1024,
        retransmit_timeout_ns=100_000.0,
        dcqcn=dcqcn,
    )
    def attach(mac_value, ip, name):
        mac = MacAddress(mac_value)
        cmac = Cmac(env, name=f"{name}-cmac")
        switch.attach(mac, cmac)
        stack = RdmaStack(env, cmac, mac, ip, name=name, config=cfg)

        def read_local(vaddr, length):
            yield env.timeout(length / 125.0)
            return None

        def write_local(vaddr, data, length):
            yield env.timeout(length / 125.0)

        stack.bind_memory(read_local, write_local)
        return stack

    receiver = attach(0x02_0000_0100, 0x0A0000FF, "incast-rx")
    senders = [
        attach(0x02_0000_0001 + i, 0x0A000001 + i, f"incast-s{i}")
        for i in range(nsenders)
    ]
    for i, sender in enumerate(senders):
        qp_s = sender.create_qp(1, psn=0)
        qp_r = receiver.create_qp(100 + i, psn=0)
        qp_s.connect(qp_r.local)
        qp_r.connect(qp_s.local)

    goodput = [0] * nsenders

    def sender_proc(i, sender):
        while env.now < horizon_ns:
            try:
                yield from sender.rdma_write(1, 0, 0x1000, msg_bytes)
            except Exception:
                return  # retry exhaustion flushed the QP: flow is dead
            goodput[i] += msg_bytes

    for i, sender in enumerate(senders):
        env.process(sender_proc(i, sender), name=f"incast-sender-{i}")

    trajectory = []

    def monitor():
        ports = switch.egress_ports()
        while env.now < horizon_ns:
            yield env.timeout(sample_ns)
            counters = switch.counters()
            rates = [s.qp_rates[1].current_rate for s in senders
                     if 1 in s.qp_rates]
            trajectory.append({
                "t_ns": env.now,
                "queue_bytes": max(p.queued_bytes for _, p in ports),
                "tail_drops": counters["tail_drops"],
                "ecn_marks": counters["ecn_marks"],
                "goodput_bytes": sum(goodput),
                "sum_rate_gbps": sum(rates) * 8.0,
            })

    env.process(monitor(), name="incast-monitor")
    env.run(until=horizon_ns)

    total = sum(goodput)
    jain = (total * total / (nsenders * sum(g * g for g in goodput))
            if total else 0.0)
    counters = switch.counters()
    return {
        "goodput_bytes": total,
        "goodput_gbps": total * 8.0 / horizon_ns,
        "per_flow_bytes": list(goodput),
        "jain_fairness": jain,
        "tail_drops": counters["tail_drops"],
        "ecn_marks": counters["ecn_marks"],
        "cnps_received": sum(s.stats["cnps_received"] for s in senders),
        "dead_flows": sum(1 for g in goodput if g == 0),
        "trajectory": trajectory,
    }


def bench_net_incast(quick: bool) -> Dict[str, Any]:
    """N-to-1 incast with and without DCQCN: the collapse-avoidance gate.

    DCQCN-off is the collapse point; DCQCN-on must hold at least
    ``NET_COLLAPSE_RATIO_BOUND`` times its goodput with Jain fairness
    above ``NET_FAIRNESS_BOUND``.  Both trajectories (queue depth,
    drops, marks, aggregate rate over time) land in ``BENCH_NET.json``.
    """
    nsenders = 8 if quick else 16
    horizon_ns = 800_000.0 if quick else 2_000_000.0
    dcqcn_params = dict(
        min_rate=0.25,
        alpha_update_ns=5_000.0,
        rate_increase_ns=20_000.0,
        additive_increase=0.1,
        hyper_increase=0.5,
        cnp_interval_ns=10_000.0,
        initial_rate=CMAC_BANDWIDTH / 8.0,
    )
    t0 = time.perf_counter()
    off = _run_incast(nsenders, DcqcnConfig(enabled=False), horizon_ns)
    on = _run_incast(
        nsenders, DcqcnConfig(enabled=True, **dcqcn_params), horizon_ns
    )
    wall = time.perf_counter() - t0
    ratio = on["goodput_bytes"] / max(off["goodput_bytes"], 1)
    assert ratio >= NET_COLLAPSE_RATIO_BOUND, (
        f"DCQCN must avoid the incast collapse: on/off goodput ratio "
        f"{ratio:.2f} below the bound {NET_COLLAPSE_RATIO_BOUND}"
    )
    assert on["jain_fairness"] >= NET_FAIRNESS_BOUND, (
        f"DCQCN-on fairness {on['jain_fairness']:.3f} below the bound "
        f"{NET_FAIRNESS_BOUND}"
    )
    net_out = os.path.abspath(BENCH_NET_OUT)
    with open(net_out, "w") as fh:
        json.dump({
            "schema_version": 1,
            "suite": "net_incast",
            "quick": quick,
            "senders": nsenders,
            "horizon_ns": horizon_ns,
            "dcqcn_params": dcqcn_params,
            "collapse_ratio": ratio,
            "runs": {"dcqcn_off": off, "dcqcn_on": on},
        }, fh, indent=2, sort_keys=True)
        fh.write("\n")
    detail = {
        "senders": nsenders,
        "horizon_ns": horizon_ns,
        "collapse_ratio": ratio,
        "collapse_ratio_bound": NET_COLLAPSE_RATIO_BOUND,
        "jain_on": on["jain_fairness"],
        "jain_off": off["jain_fairness"],
        "jain_bound": NET_FAIRNESS_BOUND,
        "goodput_on_gbps": on["goodput_gbps"],
        "goodput_off_gbps": off["goodput_gbps"],
        "tail_drops_on": on["tail_drops"],
        "tail_drops_off": off["tail_drops"],
        "trajectory_file": net_out,
    }
    return _workload(
        "net_incast",
        throughput_gbps=on["goodput_gbps"],
        sim_time_ns=2 * horizon_ns,
        wall_time_s=wall,
        detail=detail,
    )


WORKLOADS = [
    bench_hbm_scaling,
    bench_rdma_msgsize,
    bench_multitenant_aes,
    bench_scheduler_churn,
    bench_engine_events,
    bench_ring_submit,
    bench_net_incast,
]


# ----------------------------------------------------------- suite + schema


def run_suite(quick: bool = False) -> Dict[str, Any]:
    t0 = time.perf_counter()
    workloads: List[Dict[str, Any]] = []
    for bench in WORKLOADS:
        print(f"[perf] running {bench.__name__} ...", flush=True)
        workloads.append(bench(quick))
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "perf_harness",
        "quick": quick,
        "total_wall_time_s": time.perf_counter() - t0,
        "workloads": workloads,
    }


def validate_results(results: Dict[str, Any]) -> List[str]:
    """Pure-python schema check (no external deps); returns problems."""
    errors: List[str] = []

    def expect(cond, msg):
        if not cond:
            errors.append(msg)

    expect(isinstance(results, dict), "top level must be an object")
    if not isinstance(results, dict):
        return errors
    expect(results.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    expect(results.get("suite") == "perf_harness", "suite must be 'perf_harness'")
    expect(isinstance(results.get("quick"), bool), "quick must be a bool")
    expect(isinstance(results.get("total_wall_time_s"), (int, float)),
           "total_wall_time_s must be a number")
    workloads = results.get("workloads")
    expect(isinstance(workloads, list) and len(workloads) >= 4,
           "workloads must be a list with >= 4 entries")
    for i, wl in enumerate(workloads or []):
        where = f"workloads[{i}]"
        if not isinstance(wl, dict):
            errors.append(f"{where} must be an object")
            continue
        expect(isinstance(wl.get("name"), str) and wl["name"],
               f"{where}.name must be a non-empty string")
        for key in ("throughput_gbps", "ops_per_s"):
            value = wl.get(key)
            expect(value is None or (isinstance(value, (int, float)) and value >= 0),
                   f"{where}.{key} must be null or a non-negative number")
        expect(wl.get("throughput_gbps") is not None or wl.get("ops_per_s") is not None,
               f"{where} needs throughput_gbps or ops_per_s")
        latency = wl.get("latency_ns")
        if latency is not None:
            expect(isinstance(latency, dict)
                   and {"p50", "p99", "mean"} <= set(latency)
                   and all(isinstance(latency[k], (int, float)) for k in
                           ("p50", "p99", "mean")),
                   f"{where}.latency_ns needs numeric p50/p99/mean")
        for key in ("sim_time_ns", "wall_time_s"):
            expect(isinstance(wl.get(key), (int, float)) and wl[key] >= 0,
                   f"{where}.{key} must be a non-negative number")
        expect(isinstance(wl.get("detail"), dict), f"{where}.detail must be an object")
        if wl.get("name") == "scheduler_churn" and isinstance(wl.get("detail"), dict):
            cache = wl["detail"].get("bitstream_cache")
            expect(isinstance(cache, dict),
                   f"{where}.detail.bitstream_cache must be an object")
            if isinstance(cache, dict):
                expect(isinstance(cache.get("speedup"), (int, float))
                       and cache["speedup"] > 1.0,
                       f"{where} bitstream cache speedup must exceed 1.0")
            epr = wl["detail"].get("events_per_request")
            expect(isinstance(epr, (int, float)) and epr > 0,
                   f"{where}.detail.events_per_request must be a positive number")
            if isinstance(epr, (int, float)):
                expect(epr <= SCHED_EVENTS_PER_REQUEST_BOUND,
                       f"{where} events_per_request {epr} exceeds the "
                       f"edge-trigger bound {SCHED_EVENTS_PER_REQUEST_BOUND}")
        if wl.get("name") == "ring_submit" and isinstance(wl.get("detail"), dict):
            detail = wl["detail"]
            for key in ("ioctl_events_per_request", "ring_events_per_request"):
                expect(isinstance(detail.get(key), (int, float))
                       and detail[key] > 0,
                       f"{where}.detail.{key} must be a positive number")
            ratio = detail.get("events_ratio")
            expect(isinstance(ratio, (int, float)) and ratio > 0,
                   f"{where}.detail.events_ratio must be a positive number")
            if isinstance(ratio, (int, float)):
                expect(ratio <= RING_EVENTS_RATIO_BOUND,
                       f"{where} ring/ioctl events ratio {ratio} exceeds the "
                       f"batched-submission bound {RING_EVENTS_RATIO_BOUND}")
            sratio = detail.get("submit_events_ratio")
            expect(isinstance(sratio, (int, float)) and sratio > 0,
                   f"{where}.detail.submit_events_ratio must be a positive number")
            if isinstance(sratio, (int, float)):
                expect(sratio <= RING_SUBMIT_EVENTS_RATIO_BOUND,
                       f"{where} submit-path events ratio {sratio} exceeds "
                       f"the doorbell bound {RING_SUBMIT_EVENTS_RATIO_BOUND}")
            dpd = detail.get("descriptors_per_doorbell")
            expect(isinstance(dpd, (int, float)) and dpd > 1.0,
                   f"{where}.detail.descriptors_per_doorbell must exceed 1.0 "
                   f"(batched doorbells)")
        if wl.get("name") == "engine_events" and isinstance(wl.get("detail"), dict):
            eps = wl["detail"].get("events_per_sec")
            expect(isinstance(eps, (int, float)) and eps > 0,
                   f"{where}.detail.events_per_sec must be a positive number")
        if wl.get("name") == "net_incast" and isinstance(wl.get("detail"), dict):
            detail = wl["detail"]
            ratio = detail.get("collapse_ratio")
            expect(isinstance(ratio, (int, float)) and ratio > 0,
                   f"{where}.detail.collapse_ratio must be a positive number")
            if isinstance(ratio, (int, float)):
                expect(ratio >= NET_COLLAPSE_RATIO_BOUND,
                       f"{where} DCQCN on/off goodput ratio {ratio} below "
                       f"the collapse-avoidance bound "
                       f"{NET_COLLAPSE_RATIO_BOUND}")
            jain = detail.get("jain_on")
            expect(isinstance(jain, (int, float)) and 0 < jain <= 1.0,
                   f"{where}.detail.jain_on must be in (0, 1]")
            if isinstance(jain, (int, float)):
                expect(jain >= NET_FAIRNESS_BOUND,
                       f"{where} DCQCN-on Jain fairness {jain} below the "
                       f"bound {NET_FAIRNESS_BOUND}")
    names = [wl.get("name") for wl in workloads or [] if isinstance(wl, dict)]
    expect(len(names) == len(set(names)), "workload names must be unique")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shrink workloads for CI smoke runs")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: repo-root BENCH_PR2.json)")
    parser.add_argument("--validate", metavar="FILE",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.validate:
        with open(args.validate) as fh:
            problems = validate_results(json.load(fh))
        for problem in problems:
            print(f"[perf] schema error: {problem}", file=sys.stderr)
        print(f"[perf] {args.validate}: "
              + ("INVALID" if problems else "valid"))
        return 1 if problems else 0

    results = run_suite(quick=args.quick)
    problems = validate_results(results)
    if problems:
        for problem in problems:
            print(f"[perf] schema error: {problem}", file=sys.stderr)
        return 1
    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for wl in results["workloads"]:
        rate = (f"{wl['throughput_gbps']:.2f} GB/s" if wl["throughput_gbps"]
                is not None else f"{wl['ops_per_s']:.1f} ops/s")
        print(f"[perf] {wl['name']:<16} {rate:>14}  wall {wl['wall_time_s']:.2f}s")
    print(f"[perf] wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
