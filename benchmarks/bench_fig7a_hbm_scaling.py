"""Figure 7(a): data-transfer throughput scaling with HBM channels.

A card-memory pass-through in one vFPGA, swept over the number of
parallel card streams (channels).  The curve must rise linearly at low
channel counts and taper off as the shared MMU translation pipeline (the
memory-virtualization overhead) saturates.
"""

from conftest import one_shot

from repro.experiments import run_fig7a


def test_fig7a_hbm_scaling(benchmark, report):
    result = one_shot(benchmark, run_fig7a, channels=(1, 2, 4, 8, 16, 32), transfer_mb=2)
    report(result)
    series = {row["channels"]: row["throughput_gbps"] for row in result.rows}
    # Linear regime: 4 channels within 15% of 4x a single channel.
    assert series[4] > 3.4 * series[1]
    # Taper: 32 channels is NOT 32x — virtualization overhead binds.
    assert series[32] < 16 * series[1]
    # ...but still monotonically non-decreasing.
    values = [series[c] for c in (1, 2, 4, 8, 16, 32)]
    assert all(b >= a * 0.98 for a, b in zip(values, values[1:]))


def test_fig7a_mmu_bypass_lifts_the_taper(report):
    """Paper: bypassing the MMU exposes raw channel bandwidth."""
    from repro.experiments import hbm_throughput

    with_mmu = hbm_throughput(16, transfer_mb=1)
    bypassed = hbm_throughput(16, transfer_mb=1, mmu_bypass=True)
    assert bypassed > with_mmu
