"""Figure 10(a): AES CBC throughput vs message size, single cThread.

The chained cipher is latency-bound: throughput grows with message size
(amortizing invoke overheads) and saturates around 32 KB at the
one-block-per-10-cycles pipeline rate.
"""

from conftest import one_shot

from repro.experiments import run_fig10a


def test_fig10a_saturation(benchmark, report):
    result = one_shot(
        benchmark, run_fig10a, message_kb=(1, 2, 4, 8, 16, 32, 64, 128)
    )
    report(result)
    series = {row["message_kb"]: row["throughput_mbps"] for row in result.rows}
    # Monotone non-decreasing with message size.
    values = [series[k] for k in (1, 2, 4, 8, 16, 32, 64, 128)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    # Saturation: 32 KB is within 3% of 128 KB.
    assert series[32] > 0.97 * series[128]
    # The saturated rate is in the pipeline-bound regime (paper: 280 MB/s
    # measured; chain limit 400 MB/s at 250 MHz / 10 stages).
    assert 250 < series[128] <= 400
