"""Figure 10(b): AES CBC throughput scaling with cThreads (32 KB msgs).

Each software thread fills one of the 10 pipeline stages the chained
cipher would otherwise leave idle; throughput must scale ~linearly to the
pipeline depth (the paper's 7x idle-time reduction at 8+ threads).
"""

from conftest import one_shot

from repro.experiments import run_fig10b


def test_fig10b_linear_scaling(benchmark, report):
    result = one_shot(benchmark, run_fig10b, threads=(1, 2, 4, 8, 10))
    report(result)
    series = {row["threads"]: row["speedup"] for row in result.rows}
    assert series[2] > 1.85
    assert series[4] > 3.5
    assert series[8] > 6.7  # the paper's "up to 7x idle-time reduction"
    assert series[10] > 8.0
    # No superlinear artifacts.
    assert series[10] <= 10.5
