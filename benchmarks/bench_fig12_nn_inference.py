"""Figure 12: hls4ml NN inference, CoyoteAccelerator vs PYNQ + Vitis.

The intrusion-detection MLP deployed through both backends: identical
predictions, comparable resources, and an order-of-magnitude latency
advantage for the Coyote v2 path (direct host streaming + C++ runtime vs
copy-through-HBM + Python runtime).
"""

import re

import pytest
from conftest import one_shot

from repro.experiments import run_fig12


def test_fig12_nn_inference(benchmark, report):
    result = one_shot(benchmark, run_fig12, samples=4096, batch_size=1024)
    report(result)
    rows = {row["backend"]: row for row in result.rows}
    coyote, pynq = rows["CoyoteAccelerator"], rows["PYNQ + Vitis"]
    speedup = pynq["latency_ms"] / coyote["latency_ms"]
    assert speedup > 8.0, f"only {speedup:.1f}x"
    # Comparable resource utilisation (within 2 percentage points).
    assert abs(coyote["lut_pct"] - pynq["lut_pct"]) < 2.0
    assert abs(coyote["dsp_pct"] - pynq["dsp_pct"]) < 2.0


def test_fig12_speedup_grows_with_smaller_batches(report):
    """Python runtime overhead is per call: small batches widen the gap."""
    small = run_fig12(samples=1024, batch_size=256)
    large = run_fig12(samples=4096, batch_size=4096)

    def speedup(result):
        rows = {row["backend"]: row for row in result.rows}
        return rows["PYNQ + Vitis"]["latency_ms"] / rows["CoyoteAccelerator"]["latency_ms"]

    assert speedup(small) > speedup(large)
