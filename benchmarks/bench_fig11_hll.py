"""Figure 11: HyperLogLog on Coyote v2 vs Coyote v1.

Same HLS kernel on both shells: throughput must be comparable (both are
host-link bound), Coyote v2's utilisation slightly higher (~10% of the
device total), and the on-demand partial reconfiguration of the kernel
must land near the paper's 57 ms.
"""

import re

import pytest
from conftest import one_shot

from repro.experiments import run_fig11


def test_fig11_hll(benchmark, report):
    result = one_shot(benchmark, run_fig11, data_mb=4)
    report(result)
    rows = {row["system"]: row for row in result.rows}
    v2, v1 = rows["Coyote v2"], rows["Coyote v1"]
    # Comparable performance (within 5%) — no overhead from the richer
    # interfaces.
    assert v2["throughput_gbps"] == pytest.approx(v1["throughput_gbps"], rel=0.05)
    # Slightly higher utilisation for v2, but total stays around 10%.
    assert v2["lut_pct"] > v1["lut_pct"]
    assert v2["lut_pct"] < 14.0
    # On-demand PR latency close to the paper's 57 ms.
    pr_note = next(n for n in result.notes if "on-demand" in n)
    pr_ms = float(re.search(r"([\d.]+) ms", pr_note).group(1))
    assert pr_ms == pytest.approx(57.0, rel=0.15)
